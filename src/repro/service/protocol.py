"""Wire protocol of the analysis service.

JSON in, JSON out, rationals as strings — the exact-arithmetic
guarantee of the engine survives the network because every
:class:`~fractions.Fraction` crosses the wire in its ``"p/q"`` string
form (the same convention as :mod:`repro.io.json_io`) and is rebuilt
exactly on the other side.  The client reconstructs the engine's own
result dataclasses (:class:`~repro.resilience.bounded.BoundedDelayResult`,
:class:`~repro.sched.sp.SpResult`,
:class:`~repro.sched.edf_delay.EdfDelayResult`,
:class:`~repro.core.facade.TaskAnalysisSummary`,
:class:`~repro.mp.bounds.DagRtaResult`,
:class:`~repro.mp.global_sched.GlobalSchedResult`), so a served
analysis compares ``==`` to a direct in-process call.

**Request** (one JSON object)::

    {
      "kind": "delay" | "bounded_delay" | "sp_schedulable"
              | "edf_structural_delays" | "analyze_many" | "whatif_sweep"
              | "dag_rta" | "global_fp_schedulable"
              | "global_rm_schedulable",
      "task":  {...},            # single-task + whatif kinds (json_io /
                                 # repro.mp.io dict, per the kind's model)
      "tasks": [{...}, ...],     # set kinds
      "edits": [{"op": ...}, ...],  # whatif_sweep: model edits (see
                                    # repro.whatif.edits wire forms)
      "beta": {"rate": "1/2", "latency": "4"}   # rate-latency shorthand
              | {"segments": [...]},            # full curve dict
                                 # (single-resource kinds only)
      "m": 4,                    # processor count (multiprocessor kinds)
      "deadline_ms": 250,        # optional: analysis budget (ms)
      "max_expansions": 10000,   # optional: work-unit budget
      "max_segments": 32,        # optional: degraded-approximation k
      "params": {...},           # optional kind-specific keywords
      "perf": true,              # optional: per-request perf delta
      "validate": true           # optional: semantic task validation
    }

**Response envelope**::

    {"ok": true, "trace_id": "...", "kind": "...", "degraded": false,
     "shed": false, "result": {...}, "perf": {...}?}

Analysis-level failures (validation, unbounded workload, exhausted
budget on a kind with no sound degraded form) come back with HTTP 200
and ``"ok": false`` plus a typed error object — a failed *analysis* is
a first-class answer, not a transport error.  Transport-level problems
(malformed JSON, unknown kind, queue full, draining) use 4xx/5xx.

Error codes: ``bad_request``, ``validation``, ``unbounded``,
``budget_exhausted``, ``analysis_error``, ``internal``.

Every kind is described by one :class:`KindSpec` row in
:data:`KIND_REGISTRY` — arity, task model, whether it takes ``beta``
or ``m``, the parameter allowlist, and the result codec.  Adding a
kind is one :func:`register_kind` call; request decoding, result
encoding/decoding, placement digests and admission (sheddability) all
read the table instead of growing per-kind branches.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.facade import TaskAnalysisSummary
from repro.errors import (
    BudgetExhaustedError,
    ReproError,
    SerializationError,
    UnboundedBusyWindowError,
    ValidationError,
)
from repro.io.json_io import curve_from_dict, task_from_dict
from repro.minplus.curve import Curve
from repro.mp.bounds import DagRtaResult
from repro.mp.global_sched import GlobalSchedResult
from repro.mp.io import dag_from_dict
from repro.resilience.bounded import BoundedDelayResult
from repro.resilience.budget import Budget
from repro.sched.edf_delay import EdfDelayResult
from repro.sched.sp import SpResult
from repro.whatif.edits import edit_from_dict
from repro.whatif.engine import WhatIfResult

__all__ = [
    "PROTOCOL_VERSION",
    "KINDS",
    "SINGLE_TASK_KINDS",
    "SET_KINDS",
    "WHATIF_KINDS",
    "MP_KINDS",
    "KindSpec",
    "KIND_REGISTRY",
    "register_kind",
    "is_sheddable",
    "DecodedRequest",
    "new_trace_id",
    "request_placement",
    "decode_request",
    "encode_result",
    "decode_result",
    "error_envelope",
    "error_code_for",
]

PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Rational and shared sub-object codecs
# ----------------------------------------------------------------------


def _q_out(q) -> Optional[str]:
    return None if q is None else str(q)


def _q_in(s, default=None) -> Optional[Fraction]:
    return default if s is None else Fraction(str(s))


def _encode_job_delays(job_delays: Dict[str, Dict[str, Fraction]]):
    return {
        task: {job: str(d) for job, d in delays.items()}
        for task, delays in job_delays.items()
    }


def _decode_job_delays(data) -> Dict[str, Dict[str, Fraction]]:
    return {
        task: {job: Fraction(d) for job, d in delays.items()}
        for task, delays in data.items()
    }


def _encode_summary(s: TaskAnalysisSummary) -> Dict[str, Any]:
    return {
        "task": s.task,
        "delay": str(s.delay),
        "backlog": str(s.backlog),
        "busy_window": str(s.busy_window),
        "per_job": {j: str(d) for j, d in s.per_job.items()},
        "meets_deadlines": s.meets_deadlines,
        "witness_vertices": (
            None if s.witness_vertices is None else list(s.witness_vertices)
        ),
    }


def _decode_summary(s: Dict[str, Any]) -> TaskAnalysisSummary:
    return TaskAnalysisSummary(
        task=s["task"],
        delay=Fraction(s["delay"]),
        backlog=Fraction(s["backlog"]),
        busy_window=Fraction(s["busy_window"]),
        per_job={j: Fraction(d) for j, d in s["per_job"].items()},
        meets_deadlines=s["meets_deadlines"],
        witness_vertices=(
            None
            if s["witness_vertices"] is None
            else tuple(s["witness_vertices"])
        ),
    )


# ----------------------------------------------------------------------
# Per-kind result codecs
# ----------------------------------------------------------------------


def _encode_bounded(result: BoundedDelayResult) -> Dict[str, Any]:
    return {
        "delay": str(result.delay),
        "degraded": result.degraded,
        "level": result.level,
        "reason": result.reason,
        "busy_window": _q_out(result.busy_window),
        "tuple_count": result.tuple_count,
        "explored_horizon": _q_out(result.explored_horizon),
        # Witness tuples hold engine-internal state; the wire form
        # is a display string (clients never resume from it).
        "critical_tuple": (
            None
            if result.critical_tuple is None
            else str(result.critical_tuple)
        ),
    }


def _decode_bounded(data: Dict[str, Any]) -> BoundedDelayResult:
    return BoundedDelayResult(
        delay=Fraction(data["delay"]),
        degraded=data["degraded"],
        level=data["level"],
        reason=data.get("reason"),
        busy_window=_q_in(data.get("busy_window")),
        critical_tuple=data.get("critical_tuple"),
        tuple_count=data.get("tuple_count"),
        explored_horizon=_q_in(data.get("explored_horizon")),
    )


def _encode_sp(sp: SpResult) -> Dict[str, Any]:
    return {
        "schedulable": sp.schedulable,
        "job_delays": _encode_job_delays(sp.job_delays),
        "failures": [
            [task, job, str(delay), str(deadline)]
            for task, job, delay, deadline in sp.failures
        ],
        "saturated": list(sp.saturated),
    }


def _decode_sp(data: Dict[str, Any]) -> SpResult:
    return SpResult(
        schedulable=data["schedulable"],
        job_delays=_decode_job_delays(data["job_delays"]),
        failures=[
            (task, job, Fraction(delay), Fraction(deadline))
            for task, job, delay, deadline in data["failures"]
        ],
        saturated=list(data["saturated"]),
    )


def _encode_edf(edf: EdfDelayResult) -> Dict[str, Any]:
    return {
        "schedulable": edf.schedulable,
        "job_delays": _encode_job_delays(edf.job_delays),
        "busy_window": str(edf.busy_window),
    }


def _decode_edf(data: Dict[str, Any]) -> EdfDelayResult:
    return EdfDelayResult(
        schedulable=data["schedulable"],
        job_delays=_decode_job_delays(data["job_delays"]),
        busy_window=Fraction(data["busy_window"]),
    )


def _encode_many(result) -> Dict[str, Any]:
    return {"summaries": [_encode_summary(s) for s in result]}


def _decode_many(data: Dict[str, Any]):
    return [_decode_summary(s) for s in data["summaries"]]


def _encode_whatif(result) -> Dict[str, Any]:
    return {
        "results": [
            {
                "edit": r.edit,
                "ok": r.ok,
                "summary": (
                    None if r.summary is None else _encode_summary(r.summary)
                ),
                "error": r.error,
                "error_code": r.error_code,
                "cone_size": r.cone_size,
                "carried_vertices": r.carried_vertices,
                "total_vertices": r.total_vertices,
            }
            for r in result
        ]
    }


def _decode_whatif(data: Dict[str, Any]):
    return [
        WhatIfResult(
            edit=r["edit"],
            ok=r["ok"],
            summary=(
                None if r["summary"] is None else _decode_summary(r["summary"])
            ),
            error=r.get("error"),
            error_code=r.get("error_code"),
            cone_size=r.get("cone_size", 0),
            carried_vertices=r.get("carried_vertices", 0),
            total_vertices=r.get("total_vertices", 0),
        )
        for r in data["results"]
    ]


def _encode_dag_rta(r: DagRtaResult) -> Dict[str, Any]:
    return {
        "task": r.task,
        "m": r.m,
        "response": str(r.response),
        "graham": str(r.graham),
        "longest_path": str(r.longest_path),
        "volume": str(r.volume),
        "path_lengths": [str(length) for length in r.path_lengths],
        "schedulable": r.schedulable,
        "degraded": r.degraded,
        "level": r.level,
        "reason": r.reason,
    }


def _decode_dag_rta(data: Dict[str, Any]) -> DagRtaResult:
    return DagRtaResult(
        task=data["task"],
        m=data["m"],
        response=Fraction(data["response"]),
        graham=Fraction(data["graham"]),
        longest_path=Fraction(data["longest_path"]),
        volume=Fraction(data["volume"]),
        path_lengths=tuple(
            Fraction(length) for length in data["path_lengths"]
        ),
        schedulable=data["schedulable"],
        degraded=data["degraded"],
        level=data["level"],
        reason=data.get("reason"),
    )


def _encode_global(r: GlobalSchedResult) -> Dict[str, Any]:
    return {
        "schedulable": r.schedulable,
        "m": r.m,
        "policy": r.policy,
        "order": list(r.order),
        "responses": {
            task: _q_out(resp) for task, resp in r.responses.items()
        },
        "failures": [
            [task, str(bound), str(deadline)]
            for task, bound, deadline in r.failures
        ],
    }


def _decode_global(data: Dict[str, Any]) -> GlobalSchedResult:
    return GlobalSchedResult(
        schedulable=data["schedulable"],
        m=data["m"],
        policy=data["policy"],
        order=tuple(data["order"]),
        responses={
            task: _q_in(resp) for task, resp in data["responses"].items()
        },
        failures=tuple(
            (task, Fraction(bound), Fraction(deadline))
            for task, bound, deadline in data["failures"]
        ),
    )


# ----------------------------------------------------------------------
# The kind registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KindSpec:
    """Everything the protocol layer knows about one analysis kind.

    Attributes:
        kind: Wire name.
        arity: ``"single"`` (one ``task``), ``"set"`` (ordered
            ``tasks`` list) or ``"whatif"`` (one ``task`` plus
            ``edits``).
        model: Which task decoder the kind uses: ``"drt"``
            (:func:`repro.io.json_io.task_from_dict`) or ``"dag"``
            (:func:`repro.mp.io.dag_from_dict`).
        needs_beta: The kind analyses against a service curve; a
            top-level ``beta`` is required (and rejected otherwise).
        needs_m: The kind is a multiprocessor analysis; a top-level
            integer ``m >= 1`` is required (and rejected otherwise).
        sheddable: The kind has a *sound* degraded form under a
            deadline budget, so admission control may shed it to a
            tightened budget instead of rejecting.
        params: Keyword parameters forwarded to the engine entry point.
        rational_params: Subset of *params* carrying rationals (decoded
            from the ``"p/q"`` string form).
        encode: Engine result -> JSON-ready wire dict.
        decode: Wire dict -> engine result (the client-side inverse).
    """

    kind: str
    arity: str
    model: str = "drt"
    needs_beta: bool = True
    needs_m: bool = False
    sheddable: bool = False
    params: FrozenSet[str] = frozenset()
    rational_params: FrozenSet[str] = frozenset()
    encode: Optional[Callable[[Any], Dict[str, Any]]] = None
    decode: Optional[Callable[[Dict[str, Any]], Any]] = None


KIND_REGISTRY: Dict[str, KindSpec] = {}


def register_kind(spec: KindSpec) -> KindSpec:
    """Add one kind to the registry (rejects duplicates)."""
    if spec.kind in KIND_REGISTRY:
        raise ValueError(f"kind {spec.kind!r} is already registered")
    if spec.arity not in ("single", "set", "whatif"):
        raise ValueError(f"unknown arity {spec.arity!r}")
    if spec.model not in ("drt", "dag"):
        raise ValueError(f"unknown model {spec.model!r}")
    KIND_REGISTRY[spec.kind] = spec
    return spec


register_kind(
    KindSpec(
        kind="delay",
        arity="single",
        sheddable=True,
        params=frozenset({"backend"}),
        encode=_encode_bounded,
        decode=_decode_bounded,
    )
)
register_kind(
    KindSpec(
        kind="bounded_delay",
        arity="single",
        sheddable=True,
        params=frozenset({"backend"}),
        encode=_encode_bounded,
        decode=_decode_bounded,
    )
)
register_kind(
    KindSpec(
        kind="sp_schedulable",
        arity="set",
        params=frozenset({"initial_horizon", "max_iterations"}),
        rational_params=frozenset({"initial_horizon"}),
        encode=_encode_sp,
        decode=_decode_sp,
    )
)
register_kind(
    KindSpec(
        kind="edf_structural_delays",
        arity="set",
        params=frozenset(
            {"initial_horizon", "max_iterations", "reuse", "backend"}
        ),
        rational_params=frozenset({"initial_horizon"}),
        encode=_encode_edf,
        decode=_decode_edf,
    )
)
register_kind(
    KindSpec(
        kind="analyze_many",
        arity="set",
        params=frozenset({"initial_horizon", "backend"}),
        rational_params=frozenset({"initial_horizon"}),
        encode=_encode_many,
        decode=_decode_many,
    )
)
register_kind(
    KindSpec(
        # The sweep's edits arrive top-level (like 'task'), not via params.
        kind="whatif_sweep",
        arity="whatif",
        encode=_encode_whatif,
        decode=_decode_whatif,
    )
)
register_kind(
    KindSpec(
        kind="dag_rta",
        arity="single",
        model="dag",
        needs_beta=False,
        needs_m=True,
        # Budget exhaustion degrades soundly to the Graham bound.
        sheddable=True,
        params=frozenset({"max_paths"}),
        encode=_encode_dag_rta,
        decode=_decode_dag_rta,
    )
)
register_kind(
    KindSpec(
        kind="global_fp_schedulable",
        arity="set",
        model="dag",
        needs_beta=False,
        needs_m=True,
        params=frozenset({"max_iterations"}),
        encode=_encode_global,
        decode=_decode_global,
    )
)
register_kind(
    KindSpec(
        kind="global_rm_schedulable",
        arity="set",
        model="dag",
        needs_beta=False,
        needs_m=True,
        params=frozenset({"max_iterations"}),
        encode=_encode_global,
        decode=_decode_global,
    )
)

#: Kinds operating on one DRT task.
SINGLE_TASK_KINDS = frozenset(
    k
    for k, s in KIND_REGISTRY.items()
    if s.arity == "single" and s.model == "drt"
)
#: Kinds operating on an ordered DRT task set.
SET_KINDS = frozenset(
    k
    for k, s in KIND_REGISTRY.items()
    if s.arity == "set" and s.model == "drt"
)
#: Kinds sweeping model edits over one warm base task (``/v1/whatif``).
WHATIF_KINDS = frozenset(
    k for k, s in KIND_REGISTRY.items() if s.arity == "whatif"
)
#: Multiprocessor DAG kinds (take ``m``, no ``beta``).
MP_KINDS = frozenset(
    k for k, s in KIND_REGISTRY.items() if s.model == "dag"
)
KINDS = frozenset(KIND_REGISTRY)


def is_sheddable(kind: str) -> bool:
    """True iff *kind* has a sound degraded form under a deadline."""
    spec = KIND_REGISTRY.get(kind)
    return spec is not None and spec.sheddable


def new_trace_id() -> str:
    """A fresh 16-hex-digit request trace ID."""
    return secrets.token_hex(8)


def request_placement(req: "DecodedRequest") -> str:
    """The placement (routing) key of one decoded request.

    Identical, by construction, to the content digest
    :func:`repro.cluster.routing.routing_digest` computes from the wire
    spec — same parts, same order, same separator — so the cache entries
    a worker writes while serving a request are tagged with exactly the
    key the coordinator's consistent-hash ring placed the request by,
    and a resize can re-home them with the true movement delta.

    Single-resource kinds hash ``[kind, beta, task digests...]``;
    multiprocessor kinds have no curve and hash ``[kind, m, DAG
    digests...]``.
    """
    import hashlib

    from repro.parallel.cache import task_digest

    parts = [req.kind]
    if req.beta is not None:
        parts.append(req.beta.digest())
    if "m" in req.params:
        parts.append(f"m={req.params['m']}")
    parts.extend(task_digest(t) for t in req.tasks)
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


@dataclass
class DecodedRequest:
    """One validated, engine-ready analysis request.

    Everything in here is pickle-safe, so a micro-batch of decoded
    requests ships to :mod:`repro.parallel.plane` workers as-is.
    """

    kind: str
    tasks: Tuple  # DRTTask/DAGTask instances; single kinds hold exactly one
    beta: Optional[Curve]  # None for multiprocessor kinds
    budget: Optional[Budget]
    params: Dict[str, Any] = field(default_factory=dict)
    want_perf: bool = False
    trace_id: str = ""
    #: Set by admission control when the request was accepted under load
    #: shedding (its budget was tightened to keep the queue moving).
    shed: bool = False


def _bad(message: str) -> SerializationError:
    return SerializationError(message)


def _decode_rational(value: Any, what: str) -> Fraction:
    try:
        return Fraction(str(value))
    except (ValueError, ZeroDivisionError) as exc:
        raise _bad(f"invalid rational {value!r} for {what}") from exc


def decode_beta(spec: Any) -> Curve:
    """A service curve from its wire form.

    Accepts the rate-latency shorthand ``{"rate": "1/2", "latency": "4"}``
    or a full segment-list curve dict (:func:`repro.io.json_io.curve_from_dict`).
    """
    if not isinstance(spec, dict):
        raise _bad("'beta' must be an object")
    if "segments" in spec:
        return curve_from_dict(spec)
    if "rate" in spec:
        from repro.curves.service import rate_latency_service

        rate = _decode_rational(spec["rate"], "beta.rate")
        latency = _decode_rational(spec.get("latency", "0"), "beta.latency")
        if rate <= 0:
            raise _bad(f"beta.rate must be positive, got {rate}")
        if latency < 0:
            raise _bad(f"beta.latency must be >= 0, got {latency}")
        return rate_latency_service(rate, latency)
    raise _bad("'beta' needs either 'segments' or 'rate'/'latency'")


def decode_m(value: Any) -> int:
    """The processor count of a multiprocessor request."""
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise _bad(f"'m' must be an integer >= 1, got {value!r}")
    return value


def decode_request(data: Any, trace_id: Optional[str] = None) -> DecodedRequest:
    """Validate and decode one wire request into engine objects.

    Entirely table-driven by :data:`KIND_REGISTRY`: the kind's spec
    decides the task decoder, whether ``beta``/``m`` are required, and
    the parameter allowlist.

    Raises:
        SerializationError: on structural problems (missing fields,
            unknown kind, malformed numbers) — mapped to ``bad_request``.
        ValidationError: when a task is semantically malformed and
            validation was not opted out of.
    """
    if not isinstance(data, dict):
        raise _bad("request must be a JSON object")
    kind = data.get("kind")
    spec = KIND_REGISTRY.get(kind)
    if spec is None:
        raise _bad(
            f"unknown kind {kind!r}; expected one of {sorted(KINDS)}"
        )
    validate = bool(data.get("validate", True))
    loader = task_from_dict if spec.model == "drt" else dag_from_dict
    if spec.arity in ("single", "whatif"):
        if "task" not in data:
            raise _bad(f"kind {kind!r} needs a 'task' object")
        tasks = (loader(data["task"], validate=validate),)
    else:
        specs = data.get("tasks")
        if not isinstance(specs, list) or not specs:
            raise _bad(f"kind {kind!r} needs a non-empty 'tasks' list")
        tasks = tuple(loader(s, validate=validate) for s in specs)

    if spec.needs_beta:
        if "beta" not in data:
            raise _bad("request needs a 'beta' service-curve object")
        beta = decode_beta(data["beta"])
    else:
        if "beta" in data:
            raise _bad(f"kind {kind!r} takes no 'beta' (it has no curve)")
        beta = None

    try:
        budget = Budget.from_request(
            deadline_ms=data.get("deadline_ms"),
            max_expansions=data.get("max_expansions"),
            max_segments=data.get("max_segments"),
        )
    except (TypeError, ValueError) as exc:
        raise _bad(f"invalid budget fields: {exc}") from exc

    raw_params = data.get("params", {})
    if not isinstance(raw_params, dict):
        raise _bad("'params' must be an object")
    unknown = sorted(set(raw_params) - spec.params)
    if unknown:
        raise _bad(
            f"unknown params {unknown} for kind {kind!r}; "
            f"allowed: {sorted(spec.params)}"
        )
    params = dict(raw_params)
    for name in spec.rational_params & set(params):
        if params[name] is not None:
            params[name] = _decode_rational(params[name], f"params.{name}")

    if spec.needs_m:
        if "m" not in data:
            raise _bad(f"kind {kind!r} needs a processor count 'm'")
        params["m"] = decode_m(data["m"])
    elif "m" in data:
        raise _bad(f"kind {kind!r} takes no 'm' (single-resource)")

    if spec.arity == "whatif":
        specs = data.get("edits")
        if not isinstance(specs, list) or not specs:
            raise _bad(f"kind {kind!r} needs a non-empty 'edits' list")
        params["edits"] = [edit_from_dict(s) for s in specs]

    return DecodedRequest(
        kind=kind,
        tasks=tasks,
        beta=beta,
        budget=budget,
        params=params,
        want_perf=bool(data.get("perf", False)),
        trace_id=trace_id or new_trace_id(),
    )


# ----------------------------------------------------------------------
# Result encoding (server) and decoding (client)
# ----------------------------------------------------------------------


def encode_result(kind: str, result: Any) -> Dict[str, Any]:
    """The JSON-friendly wire form of one kind's engine result."""
    spec = KIND_REGISTRY.get(kind)
    if spec is None or spec.encode is None:
        raise ValueError(f"unknown kind {kind!r}")
    return spec.encode(result)


def decode_result(kind: str, data: Dict[str, Any]):
    """Rebuild the engine result object from its wire form.

    The client-side inverse of :func:`encode_result`.  Reconstructed
    dataclasses compare ``==`` to the direct in-process results, except
    for ``critical_tuple`` (served as a display string — noted in the
    class docs)."""
    spec = KIND_REGISTRY.get(kind)
    if spec is None or spec.decode is None:
        raise ValueError(f"unknown kind {kind!r}")
    return spec.decode(data)


# ----------------------------------------------------------------------
# Error envelopes
# ----------------------------------------------------------------------


def error_code_for(exc: BaseException) -> str:
    """The wire error code of one exception (typed, never a traceback)."""
    if isinstance(exc, ValidationError):
        return "validation"
    if isinstance(exc, UnboundedBusyWindowError):
        return "unbounded"
    if isinstance(exc, BudgetExhaustedError):
        return "budget_exhausted"
    if isinstance(exc, SerializationError):
        return "bad_request"
    if isinstance(exc, ReproError):
        return "analysis_error"
    return "internal"


def error_envelope(
    exc: BaseException, trace_id: str, kind: Optional[str] = None
) -> Dict[str, Any]:
    """The ``ok: false`` response body for one failed request."""
    code = error_code_for(exc)
    message = (
        "internal error" if code == "internal" else str(exc)
    )
    body: Dict[str, Any] = {
        "ok": False,
        "trace_id": trace_id,
        "error": {"code": code, "message": message},
    }
    if kind is not None:
        body["kind"] = kind
    return body
