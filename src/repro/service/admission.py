"""Admission control and backpressure for the analysis service.

The batching queue is the one shared resource the server must protect:
an unbounded queue turns overload into unbounded latency for everyone.
The :class:`AdmissionController` keeps it bounded with a three-tier
policy, decided *before* a request is enqueued:

* **accept** — below the high-water mark, requests queue normally;
* **shed** — above the high-water mark (``shed_fraction`` of the queue
  cap), requests that can degrade soundly (delay-kind requests carrying
  a deadline budget) are still accepted, but their budget is tightened
  to ``shed_deadline_ms`` — they answer quickly with a sound over-
  approximate bound from the degradation ladder, trading precision for
  queue drain instead of being turned away;
* **reject** — when the queue cannot hold the request (or the request
  cannot shed above the high-water mark), the server answers
  ``429 Too Many Requests`` with a ``Retry-After`` estimated from the
  observed per-request service time and the current depth — an honest
  hint, not a constant.

Batch submissions are admitted atomically: a batch that does not fit in
the remaining queue space is rejected whole (partial admission would
return a response the client cannot correlate with its request list).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Optional

__all__ = ["AdmissionController", "Decision"]

#: Decision actions.
ACCEPT = "accept"
SHED = "shed"
REJECT = "reject"


@dataclass(frozen=True)
class Decision:
    """Outcome of one admission check.

    Attributes:
        action: ``"accept"``, ``"shed"`` or ``"reject"``.
        retry_after: Suggested client wait in whole seconds (rejections
            only; 0 otherwise).
    """

    action: str
    retry_after: int = 0

    @property
    def accepted(self) -> bool:
        return self.action != REJECT


class AdmissionController:
    """Bounded-queue admission with load shedding and honest back-off.

    Thread-safe: decisions happen on the event loop, service-time
    observations arrive from dispatch threads.

    Args:
        max_queue: Hard cap on queued + in-flight analysis requests.
        shed_fraction: Fraction of *max_queue* above which sheddable
            requests are degraded instead of queued at full fidelity.
        shed_deadline_ms: Budget deadline forced onto shed requests.
        min_retry_after: Floor of the ``Retry-After`` hint (seconds).
        max_retry_after: Ceiling of the ``Retry-After`` hint (seconds).
    """

    def __init__(
        self,
        max_queue: int = 256,
        shed_fraction: float = 0.75,
        shed_deadline_ms: float = 50.0,
        min_retry_after: int = 1,
        max_retry_after: int = 60,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if not 0.0 < shed_fraction <= 1.0:
            raise ValueError(
                f"shed_fraction must be in (0, 1], got {shed_fraction}"
            )
        if shed_deadline_ms <= 0:
            raise ValueError(
                f"shed_deadline_ms must be positive, got {shed_deadline_ms}"
            )
        self.max_queue = max_queue
        self.shed_deadline_ms = shed_deadline_ms
        self._high_water = max(1, int(max_queue * shed_fraction))
        self._min_retry = min_retry_after
        self._max_retry = max_retry_after
        self._lock = threading.Lock()
        #: EWMA of observed per-request service seconds (None until the
        #: first completion; the floor covers the cold start).
        self._ewma_service_s: Optional[float] = None

    @property
    def high_water(self) -> int:
        """Queue depth above which load shedding starts."""
        return self._high_water

    # -- observations ----------------------------------------------------

    def observe_service_time(self, seconds: float) -> None:
        """Feed one completed request's service time into the EWMA."""
        with self._lock:
            if self._ewma_service_s is None:
                self._ewma_service_s = seconds
            else:
                self._ewma_service_s = (
                    0.8 * self._ewma_service_s + 0.2 * seconds
                )

    def retry_after(self, depth: int) -> int:
        """Whole-second back-off hint for the current queue *depth*."""
        with self._lock:
            per_req = self._ewma_service_s
        if per_req is None:
            return self._min_retry
        estimate = math.ceil(max(1, depth) * per_req)
        return max(self._min_retry, min(self._max_retry, estimate))

    # -- the decision ----------------------------------------------------

    def admit(self, n_items: int, depth: int, sheddable: bool) -> Decision:
        """Decide the fate of *n_items* new requests at queue *depth*.

        Args:
            n_items: Requests the submission would enqueue (1, or the
                batch size — batches are admitted atomically).
            depth: Current queued + in-flight request count.
            sheddable: True iff every submitted request can degrade to a
                sound anytime bound under a tightened budget (delay-kind
                requests carrying a deadline).
        """
        if n_items < 1:
            raise ValueError(f"n_items must be >= 1, got {n_items}")
        after = depth + n_items
        if after > self.max_queue:
            return Decision(REJECT, retry_after=self.retry_after(depth))
        if after > self._high_water:
            if sheddable:
                return Decision(SHED)
            # Between high water and the hard cap, non-sheddable
            # requests still queue: rejection is reserved for a queue
            # that genuinely cannot hold them.
            return Decision(ACCEPT)
        return Decision(ACCEPT)
