"""Micro-batch coalescing onto the parallel execution plane.

Every analysis request the server accepts — whether it arrived alone on
``/v1/analyze`` or as one element of a ``/v1/batch`` — is enqueued
individually on one shared :class:`Batcher`.  A dispatcher task drains
the queue into **micro-batches**: it waits ``batch_window`` seconds
after the first pending request (or not at all once ``max_batch`` are
waiting), then ships the whole slice through
:func:`repro.parallel.map_settled` in a dispatch thread.  Concurrent
clients therefore share one pool fan-out and one warm result cache per
micro-batch instead of paying per-request dispatch overhead — and a
request that fails (validation, unbounded workload, exhausted budget)
settles alone without poisoning its batch neighbours.

Execution semantics per kind (:func:`execute_request`, dispatched
through the :data:`_EXECUTORS` registry — one
:func:`register_executor` call per kind, the execution-side companion
of :data:`repro.service.protocol.KIND_REGISTRY`):

* ``delay`` / ``bounded_delay`` run
  :func:`repro.resilience.bounded_delay`: a budget (from the request's
  ``deadline_ms`` or the admission shedder) degrades to a *sound*
  anytime bound, tagged ``degraded`` — never an error;
* ``dag_rta`` runs :func:`repro.mp.bounds.dag_rta` the same way — its
  degraded rung is the Graham bound;
* ``sp_schedulable`` / ``edf_structural_delays`` / ``analyze_many`` /
  ``global_fp_schedulable`` / ``global_rm_schedulable`` run under
  :func:`~repro.resilience.budget.budget_scope`; these verdicts have no
  sound partial form, so budget exhaustion surfaces as a typed
  ``budget_exhausted`` error envelope;
* ``whatif_sweep`` runs :func:`repro.whatif.engine.whatif_sweep` under
  the same scope — one warm incremental session per request, per-edit
  failures reported inside the result list.

Each envelope carries the request's trace ID; with ``"perf": true`` it
also carries the perf-counter delta of exactly that request's work —
measured inside whichever worker process ran it, and threaded back
alongside the worker snapshot the plane merges into the parent.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Sequence

from repro import perf
from repro.core.facade import analyze_many
from repro.mp.bounds import dag_rta
from repro.mp.global_sched import global_fp_schedulable, global_rm_schedulable
from repro.parallel import cache as result_cache
from repro.parallel.plane import JobsLike, map_settled
from repro.resilience.bounded import bounded_delay
from repro.resilience.budget import budget_scope
from repro.sched.edf_delay import edf_structural_delays
from repro.sched.sp import sp_schedulable
from repro.service import protocol
from repro.service.protocol import DecodedRequest
from repro.whatif.engine import whatif_sweep

__all__ = ["execute_request", "register_executor", "run_batch", "Batcher"]


def _counter_delta(before: Dict[str, int], after: Dict[str, int]):
    delta = {
        name: n - before.get(name, 0)
        for name, n in after.items()
        if n != before.get(name, 0)
    }
    return delta


# ----------------------------------------------------------------------
# Per-kind executors
# ----------------------------------------------------------------------

_EXECUTORS: Dict[str, object] = {}


def register_executor(kind: str, fn) -> None:
    """Register the engine entry point of one protocol kind.

    *fn* takes the :class:`DecodedRequest` and returns the engine
    result; budget semantics (explicit budget vs. ambient scope) are
    the executor's own business.
    """
    if kind not in protocol.KIND_REGISTRY:
        raise ValueError(f"kind {kind!r} is not in the protocol registry")
    _EXECUTORS[kind] = fn


def _exec_bounded(req: DecodedRequest):
    return bounded_delay(
        req.tasks[0],
        req.beta,
        budget=req.budget,
        backend=req.params.get("backend"),
    )


def _exec_sp(req: DecodedRequest):
    with budget_scope(req.budget):
        return sp_schedulable(list(req.tasks), req.beta, **req.params)


def _exec_edf(req: DecodedRequest):
    with budget_scope(req.budget):
        return edf_structural_delays(list(req.tasks), req.beta, **req.params)


def _exec_many(req: DecodedRequest):
    with budget_scope(req.budget):
        return analyze_many(list(req.tasks), req.beta, **req.params)


def _exec_whatif(req: DecodedRequest):
    # One warm session per request; per-edit failures come back inside
    # the result list, not as an envelope error.
    with budget_scope(req.budget):
        return whatif_sweep(req.tasks[0], req.beta, req.params["edits"])


def _exec_dag_rta(req: DecodedRequest):
    return dag_rta(
        req.tasks[0],
        m=req.params["m"],
        budget=req.budget,
        max_paths=req.params.get("max_paths"),
    )


def _exec_global_fp(req: DecodedRequest):
    kwargs = {k: v for k, v in req.params.items() if k != "m"}
    with budget_scope(req.budget):
        return global_fp_schedulable(
            list(req.tasks), m=req.params["m"], **kwargs
        )


def _exec_global_rm(req: DecodedRequest):
    kwargs = {k: v for k, v in req.params.items() if k != "m"}
    with budget_scope(req.budget):
        return global_rm_schedulable(
            list(req.tasks), m=req.params["m"], **kwargs
        )


register_executor("delay", _exec_bounded)
register_executor("bounded_delay", _exec_bounded)
register_executor("sp_schedulable", _exec_sp)
register_executor("edf_structural_delays", _exec_edf)
register_executor("analyze_many", _exec_many)
register_executor("whatif_sweep", _exec_whatif)
register_executor("dag_rta", _exec_dag_rta)
register_executor("global_fp_schedulable", _exec_global_fp)
register_executor("global_rm_schedulable", _exec_global_rm)


def execute_request(req: DecodedRequest) -> Dict[str, object]:
    """Run one decoded request; return its JSON-ready response envelope.

    Module-level and envelope-returning by design: micro-batches ship
    this function to :mod:`repro.parallel.plane` workers, and every
    outcome — including analysis failures — must travel back as a
    value.
    """
    before = perf.counters() if req.want_perf else None
    t0 = time.perf_counter()
    degraded = False
    try:
        # Tag every cache entry this request writes with its routing
        # key, so a cluster resize can re-home the entries along with
        # the requests that produced them (repro.parallel.cache).
        placement = result_cache.placement_scope(
            protocol.request_placement(req)
        )
        placement.__enter__()
    except Exception:  # noqa: BLE001 - tagging must never fail a request
        placement = None
    try:
        executor = _EXECUTORS.get(req.kind)
        if executor is None:  # pragma: no cover - decode rejects unknowns
            raise ValueError(f"unknown kind {req.kind!r}")
        result = executor(req)
        degraded = bool(getattr(result, "degraded", False))
    except Exception as exc:  # noqa: BLE001 - outcomes travel as values
        envelope = protocol.error_envelope(exc, req.trace_id, req.kind)
        envelope["shed"] = req.shed
        perf.record("service.exec_errors")
        return envelope
    finally:
        if placement is not None:
            placement.__exit__(None, None, None)
        elapsed = time.perf_counter() - t0
        perf.record("service.exec_requests")
        perf.observe("service.exec_s", elapsed)

    envelope: Dict[str, object] = {
        "ok": True,
        "trace_id": req.trace_id,
        "kind": req.kind,
        "degraded": degraded,
        "shed": req.shed,
        "elapsed_s": elapsed,
        "result": protocol.encode_result(req.kind, result),
    }
    if before is not None:
        envelope["perf"] = {
            "counters": _counter_delta(before, perf.counters())
        }
    return envelope


def run_batch(
    requests: Sequence[DecodedRequest],
    jobs: JobsLike = None,
    timeout: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Execute one micro-batch on the plane; one envelope per request.

    Request-level failures are already envelopes (``execute_request``
    never raises); a settled ``("err", exc)`` outcome here is therefore
    an infrastructure failure (worker crash survived retries, result
    unpicklable) and maps to a ``worker`` error envelope.

    *timeout* is the plane's per-item watchdog allowance: a worker that
    hangs past it is killed and its item retried, so one stuck request
    cannot occupy a pool slot indefinitely (the last-resort serial
    re-execution runs under a matching deadline budget, which the
    degradation ladder turns into a sound bound for delay kinds).
    """
    outcomes = map_settled(
        execute_request, list(requests), jobs=jobs, timeout=timeout
    )
    envelopes = []
    for req, (status, out) in zip(requests, outcomes):
        if status == "ok":
            envelopes.append(out)
        else:
            envelope = protocol.error_envelope(out, req.trace_id, req.kind)
            envelope["error"]["code"] = "worker"
            envelope["shed"] = req.shed
            envelopes.append(envelope)
    return envelopes


class _Pending:
    __slots__ = ("request", "future", "enqueued_at")

    def __init__(self, request: DecodedRequest, future: asyncio.Future):
        self.request = request
        self.future = future
        self.enqueued_at = time.monotonic()


class Batcher:
    """Shared asyncio micro-batching queue in front of the plane.

    Args:
        jobs: Worker-count specification each micro-batch fans out with
            (see :func:`repro.parallel.plane.resolve_jobs`).
        max_batch: Largest micro-batch; once this many requests wait,
            dispatch is immediate.
        batch_window: Seconds the dispatcher lingers after the first
            pending request to let concurrent arrivals coalesce.
        dispatch_threads: Parallel micro-batches in flight (each runs
            ``map_settled`` in its own executor thread).
        item_timeout: Per-item plane watchdog in seconds (see
            :func:`run_batch`); None disables it.
    """

    def __init__(
        self,
        jobs: JobsLike = None,
        max_batch: int = 64,
        batch_window: float = 0.002,
        dispatch_threads: int = 2,
        metrics=None,
        item_timeout: Optional[float] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        self.jobs = jobs
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.item_timeout = item_timeout
        self._metrics = metrics
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, dispatch_threads),
            thread_name_prefix="repro-dispatch",
        )
        self._queue: Deque[_Pending] = deque()
        self._inflight = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._batch_tasks: set = set()
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher task on the running event loop."""
        self._wakeup = asyncio.Event()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def close(self) -> None:
        """Stop dispatching and release the executor (after drain)."""
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for pending in self._queue:
            if not pending.future.done():
                pending.future.cancel()
        self._queue.clear()
        self._executor.shutdown(wait=False)

    # -- submission ------------------------------------------------------

    @property
    def depth(self) -> int:
        """Queued plus in-flight request count (the admission input)."""
        return len(self._queue) + self._inflight

    def submit_nowait(self, request: DecodedRequest) -> asyncio.Future:
        """Enqueue one request; the future resolves to its envelope.

        Admission control runs *before* this — the batcher itself never
        rejects (a bounded queue with silent drops would lie to admitted
        clients).
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        future = asyncio.get_running_loop().create_future()
        self._queue.append(_Pending(request, future))
        assert self._wakeup is not None, "Batcher.start() was not called"
        self._wakeup.set()
        return future

    async def submit(self, request: DecodedRequest) -> Dict[str, object]:
        """Enqueue one request and await its response envelope."""
        return await self.submit_nowait(request)

    async def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until every queued and in-flight request settled.

        Returns True on a clean drain, False when *timeout* elapsed
        first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.depth > 0:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    # -- dispatch --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            while not self._queue:
                self._wakeup.clear()
                await self._wakeup.wait()
            if len(self._queue) < self.max_batch and self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            batch = [
                self._queue.popleft()
                for _ in range(min(self.max_batch, len(self._queue)))
            ]
            if not batch:
                continue
            self._inflight += len(batch)
            if self._metrics is not None:
                self._metrics.observe_batch(len(batch))
            task = asyncio.get_running_loop().create_task(
                self._run_and_settle(batch)
            )
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_and_settle(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        requests = [p.request for p in batch]
        try:
            envelopes = await loop.run_in_executor(
                self._executor, run_batch, requests, self.jobs,
                self.item_timeout,
            )
        except Exception as exc:  # noqa: BLE001 - settle, never leak
            for pending in batch:
                if not pending.future.done():
                    envelope = protocol.error_envelope(
                        exc, pending.request.trace_id, pending.request.kind
                    )
                    envelope["error"]["code"] = "worker"
                    pending.future.set_result(envelope)
        else:
            for pending, envelope in zip(batch, envelopes):
                if not pending.future.done():
                    pending.future.set_result(envelope)
        finally:
            self._inflight -= len(batch)
