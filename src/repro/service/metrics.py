"""Metrics plane of the analysis service.

One :class:`ServiceMetrics` instance per server aggregates:

* **service counters** — requests, errors, rejections, sheds, degraded
  answers, streamed lines (plain monotonic integers);
* **per-endpoint latency histograms** — wall-clock seconds from request
  receipt to response flush, one :class:`repro.perf.Histogram` per
  ``METHOD /path``;
* **batch shape** — a histogram of micro-batch sizes plus dispatch
  counts, the direct evidence that coalescing actually happens;
* **engine state** — the process-wide :mod:`repro.perf` registry
  (which already folds in plane-worker snapshots) and the persistent
  cache's :func:`repro.parallel.cache.stats`.

:meth:`ServiceMetrics.snapshot` renders all of it as one JSON document
— the body of ``GET /metrics``.  Everything here is cheap and
thread-safe: observations arrive from the event loop *and* from
dispatch threads.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro import perf
from repro.parallel import cache as result_cache

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe metrics aggregation for one server instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        self._counters: Dict[str, int] = {}
        self._endpoints: Dict[str, perf.Histogram] = {}
        self._batch_sizes = perf.Histogram(
            bounds=[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        )

    # -- observations ----------------------------------------------------

    def record(self, name: str, n: int = 1) -> None:
        """Add *n* to service counter *name*."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe_request(
        self, endpoint: str, seconds: float, ok: bool
    ) -> None:
        """Record one handled HTTP request on *endpoint*."""
        with self._lock:
            hist = self._endpoints.get(endpoint)
            if hist is None:
                hist = self._endpoints[endpoint] = perf.Histogram()
            hist.observe(seconds)
            self._counters["requests_total"] = (
                self._counters.get("requests_total", 0) + 1
            )
            if not ok:
                self._counters["requests_failed"] = (
                    self._counters.get("requests_failed", 0) + 1
                )

    def observe_batch(self, size: int) -> None:
        """Record one dispatched micro-batch of *size* requests."""
        with self._lock:
            self._batch_sizes.observe(size)
            self._counters["batches_dispatched"] = (
                self._counters.get("batches_dispatched", 0) + 1
            )
            self._counters["batched_items"] = (
                self._counters.get("batched_items", 0) + size
            )

    def uptime_s(self) -> float:
        """Seconds since this metrics instance (the server) started."""
        return time.monotonic() - self._started_monotonic

    # -- export ----------------------------------------------------------

    def snapshot(
        self,
        queue_depth: int = 0,
        queue_max: Optional[int] = None,
        queue_high_water: Optional[int] = None,
        draining: bool = False,
    ) -> Dict[str, object]:
        """The full ``/metrics`` document (JSON-friendly, stable keys)."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            endpoints = {
                name: {
                    "count": hist.count,
                    "mean_s": hist.mean(),
                    "p95_s": hist.quantile(0.95),
                    "latency_s": hist.snapshot(),
                }
                for name, hist in sorted(self._endpoints.items())
            }
            batch_count = self._batch_sizes.count
            batches = {
                "dispatched": batch_count,
                "items": counters.get("batched_items", 0),
                "mean_size": self._batch_sizes.mean(),
                "sizes": self._batch_sizes.snapshot(),
            }
        return {
            "service": {
                "started_unix": self._started_unix,
                "uptime_s": self.uptime_s(),
                "draining": draining,
            },
            "requests": counters,
            "endpoints": endpoints,
            "queue": {
                "depth": queue_depth,
                "max": queue_max,
                "high_water": queue_high_water,
            },
            "batches": batches,
            "cache": result_cache.stats(),
            "perf": perf.snapshot(),
        }
