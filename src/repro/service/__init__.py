"""The analysis service: HTTP/JSON batching front end of the engine.

``repro serve`` (or :func:`repro.service.server.serve_main`) boots an
asyncio server that accepts single and batched analysis requests,
coalesces concurrent arrivals into micro-batches on the parallel
execution plane (:mod:`repro.parallel`), shares the warm persistent
result cache across all clients, and degrades overload soundly through
admission control and the :mod:`repro.resilience` budget ladder.
:class:`~repro.service.client.ServiceClient` is the matching caller
library.  See ``docs/API.md`` ("Analysis service") for the wire
protocol.
"""

from repro.service.admission import AdmissionController, Decision
from repro.service.batching import Batcher, execute_request, run_batch
from repro.service.client import ServiceClient, ServiceError
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    DecodedRequest,
    decode_request,
    decode_result,
    encode_result,
    error_envelope,
    new_trace_id,
)
from repro.service.server import (
    AnalysisServer,
    ServerHandle,
    ServiceConfig,
    serve_main,
)

__all__ = [
    "PROTOCOL_VERSION",
    "AdmissionController",
    "AnalysisServer",
    "Batcher",
    "DecodedRequest",
    "Decision",
    "ServerHandle",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "decode_request",
    "decode_result",
    "encode_result",
    "error_envelope",
    "execute_request",
    "new_trace_id",
    "run_batch",
    "serve_main",
]
