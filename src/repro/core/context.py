"""Per-``(task, beta)`` memoized analysis context.

Every analysis of a structural task on a service curve needs the same two
expensive artefacts: the busy-window fixpoint ``L`` and the request
frontier truncated at ``L``.  Historically each entry point
(:func:`~repro.core.delay.structural_delay`,
:func:`~repro.core.delay.structural_delays_per_job`,
:func:`~repro.core.backlog.structural_backlog`, the baselines, the EDF
and multi-task analyses) recomputed both from scratch — six independent
``request_frontier`` call sites.  :class:`AnalysisContext` computes each
artefact once per ``(task, beta)`` pair and derives every bound from the
shared copy, including the per-tuple delays, which it obtains with a
single batched pseudo-inverse sweep
(:func:`~repro.minplus.deviation.lower_pseudo_inverse_batch`).

Invalidation story: there is none, by construction.  ``DRTTask`` is
immutable after ``__init__`` (its docstring blesses free memoization in
``_analysis_cache``) and ``Curve`` is an immutable value type with
structural equality and hashing — so a context, once built, can never go
stale.  Contexts live in the task's ``_analysis_cache`` keyed by the
service curve and are dropped with the task itself.

Every bound a context produces is bit-identical (exact
:class:`~fractions.Fraction` equality) to the from-scratch value: it
iterates the same tuples in the same order with the same strict
comparisons, so even tie-breaking — which tuple is reported as critical —
is preserved.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional

from repro import perf
from repro._numeric import Q, is_inf
from repro.core.backlog import BacklogResult
from repro.core.busy_window import BusyWindow, busy_window_bound
from repro.core.delay import DelayResult
from repro.drt.model import DRTTask
from repro.drt.request import (
    FrontierStats,
    RequestTuple,
    frontier_explorer,
)
from repro.errors import AnalysisError
from repro.minplus import backend as backend_mod
from repro.minplus import kernels
from repro.minplus.curve import Curve
from repro.minplus.deviation import lower_pseudo_inverse_batch
from repro.parallel import cache as result_cache

__all__ = ["AnalysisContext"]


class AnalysisContext:
    """Shared exploration state for one ``(task, beta)`` pair.

    Obtain instances through :meth:`of`, which memoizes them in the
    task's analysis cache; constructing one directly gives an uncached
    context (useful in tests).

    Args:
        task: The structural workload.
        beta: Lower service curve of the resource.
        persist: Write results to the persistent result cache (default).
            The incremental what-if engine passes ``False``: its
            contexts are built on *forked* explorers whose exploration
            statistics reflect only the incremental work, so while the
            bounds are bit-identical to from-scratch, the stats embedded
            in a :class:`~repro.core.delay.DelayResult` are not — such
            results must not be served to cold from-scratch readers.
            Cache *reads* stay enabled either way (cached entries carry
            from-scratch stats and identical bounds).
    """

    __slots__ = (
        "task",
        "beta",
        "_persist",
        "_initial_horizon",
        "_bw",
        "_tuples",
        "_stats",
        "_delays",
        "_delay_result",
        "_per_job",
        "_backlog_result",
        "_fused_backlog",
    )

    def __init__(
        self,
        task: DRTTask,
        beta: Curve,
        persist: bool = True,
        initial_horizon=None,
    ) -> None:
        self.task = task
        self.beta = beta
        self._persist = persist
        self._initial_horizon = initial_horizon
        self._bw: Optional[BusyWindow] = None
        self._tuples: Optional[List[RequestTuple]] = None
        self._stats: Optional[FrontierStats] = None
        self._delays: Optional[List[Q]] = None
        self._delay_result: Optional[DelayResult] = None
        self._per_job: Optional[Dict[str, Fraction]] = None
        self._backlog_result: Optional[BacklogResult] = None
        #: Backlog screen stashed by a fused delay+backlog sweep.
        self._fused_backlog = None

    @classmethod
    def of(
        cls,
        task: DRTTask,
        beta: Curve,
        persist: bool = True,
        initial_horizon=None,
    ) -> "AnalysisContext":
        """The memoized context of ``(task, beta)``, created on first use.

        ``initial_horizon`` seeds the busy-window fixpoint (see
        :func:`~repro.core.busy_window.busy_window_bound`); the converged
        *length* — and every bound derived from it — is independent of
        the seed, which only saves doubling rounds.  The what-if engine
        passes the base model's exactness horizon so each edited
        context's fixpoint usually closes in one round.
        """
        from repro.drt.digest import guard_cache

        cache = guard_cache(task)
        key = ("analysis_context", beta)
        ctx = cache.get(key)
        if ctx is None:
            ctx = cls(
                task, beta, persist=persist, initial_horizon=initial_horizon
            )
            cache[key] = ctx
            perf.record("context.misses")
        else:
            perf.record("context.hits")
        return ctx

    # -- shared artefacts -------------------------------------------------

    def busy_window(self) -> BusyWindow:
        """The busy-window fixpoint (computed once per context)."""
        if self._bw is None:
            self._bw = busy_window_bound(
                self.task, self.beta, initial_horizon=self._initial_horizon
            )
        return self._bw

    def frontier(self) -> List[RequestTuple]:
        """The request frontier truncated at the busy window bound."""
        if self._tuples is None:
            bw = self.busy_window()
            with perf.timed("frontier"):
                ex = frontier_explorer(self.task)
                self._tuples = ex.tuples(bw.length)
                self._stats = ex.stats_at(bw.length)
        return self._tuples

    def stats(self) -> FrontierStats:
        """Exploration statistics of :meth:`frontier` (a fresh copy)."""
        self.frontier()
        out = FrontierStats()
        out.add(self._stats)
        return out

    def tuple_delays(self) -> List[Q]:
        """Per-tuple delay ``beta^{-1}(w) - t``, aligned with
        :meth:`frontier`, via one batched pseudo-inverse sweep.

        Raises:
            AnalysisError: if the service never provides some tuple's
                work (reported for the first such tuple in frontier
                order, exactly as the scalar loop would).
        """
        if self._delays is None:
            tuples = self.frontier()
            with perf.timed("delay"):
                invs = lower_pseudo_inverse_batch(
                    self.beta, [t.work for t in tuples]
                )
            for tup, inv in zip(tuples, invs):
                if is_inf(inv):
                    raise AnalysisError(
                        f"service curve never provides {tup.work} units of work"
                    )
            self._delays = [
                inv - tup.time for tup, inv in zip(tuples, invs)
            ]
        return self._delays

    # -- the bounds -------------------------------------------------------

    def delay_result(self) -> DelayResult:
        """The structural delay analysis result (computed once).

        Consults the persistent result cache (when enabled) before
        exploring: cached entries were produced by this very code path
        from identical inputs, so returning one is bit-identical to
        recomputing.
        """
        if self._delay_result is None:
            hit = result_cache.get_analysis("ctx.delay", self.task, self.beta)
            if hit is not None:
                self._delay_result = hit
                return self._delay_result
            bw = self.busy_window()
            tuples = self.frontier()
            best = Q(0)
            critical: Optional[RequestTuple] = None
            screened = self._screened_max(
                [tup.time for tup in tuples], [0] * len(tuples), 1
            )
            if screened is not None:
                (best, idx) = screened[0]
                critical = tuples[idx] if idx is not None else None
            else:
                for tup, d in zip(tuples, self.tuple_delays()):
                    if d > best:
                        best = d
                        critical = tup
            self._delay_result = DelayResult(
                delay=best,
                busy_window=bw.length,
                horizon=bw.horizon,
                critical_tuple=critical,
                tuple_count=len(tuples),
                stats=self.stats(),
            )
            if self._persist:
                result_cache.put_analysis(
                    "ctx.delay", self.task, self.beta, self._delay_result
                )
        return self._delay_result

    def per_job(self) -> Dict[str, Fraction]:
        """Worst-case delay per job type (computed once)."""
        if self._per_job is None:
            hit = result_cache.get_analysis("ctx.per_job", self.task, self.beta)
            if hit is not None:
                self._per_job = hit
                return dict(self._per_job)
            names = list(self.task.job_names)
            delays: Dict[str, Fraction] = {v: Q(0) for v in names}
            tuples = self.frontier()
            group_of = {v: i for i, v in enumerate(names)}
            screened = self._screened_max(
                [tup.time for tup in tuples],
                [group_of[tup.vertex] for tup in tuples],
                len(names),
            )
            if screened is not None:
                for v, (best, _) in zip(names, screened):
                    delays[v] = best
            else:
                for tup, d in zip(tuples, self.tuple_delays()):
                    if d > delays[tup.vertex]:
                        delays[tup.vertex] = d
            self._per_job = delays
            if self._persist:
                result_cache.put_analysis(
                    "ctx.per_job", self.task, self.beta, self._per_job
                )
        return dict(self._per_job)

    def _screened_max(self, offsets, group_ids, n_groups):
        """Kernel-screened per-group maximum of the tuple delays.

        Returns ``[(best, first_attainer_index), ...]`` per group with the
        exact loop's semantics — strict-improvement maxima from 0, the
        first unreachable work raising :class:`AnalysisError` with the
        exact path's message — or None when the screen is unavailable
        (exact backend, no NumPy, non-monotone beta, or delays already
        computed, in which case the exact list is at hand anyway).
        """
        if self._delays is not None:
            return None
        if not backend_mod.screens_enabled():
            return None
        if backend_mod.op_backend("pinv", len(self.beta.segments)) != "hybrid":
            return None
        tuples = self.frontier()
        works = [tup.work for tup in tuples]
        with perf.timed("delay"):
            if n_groups == 1 and self._backlog_result is None:
                # The delay sweep's offsets are the tuple times — exactly
                # what the backlog screen needs — so one fused pass shares
                # the rational->interval lowering of both arrays and
                # stashes the backlog maximum for :meth:`backlog_result`.
                fused = kernels.screened_delay_backlog(
                    self.beta, offsets, works, group_ids, n_groups
                )
                screened = None
                if fused is not None:
                    screened, backlog = fused
                    if backlog is not None:
                        self._fused_backlog = backlog
            else:
                screened = kernels.screened_pinv_delay_groups(
                    self.beta, offsets, works, group_ids, n_groups
                )
        if screened is None:
            return None
        inf_idx, results = screened
        if inf_idx is not None:
            raise AnalysisError(
                f"service curve never provides {tuples[inf_idx].work} "
                "units of work"
            )
        return results

    def backlog_result(self) -> BacklogResult:
        """The structural backlog analysis result (computed once)."""
        if self._backlog_result is None:
            hit = result_cache.get_analysis("ctx.backlog", self.task, self.beta)
            if hit is not None:
                self._backlog_result = hit
                return self._backlog_result
            bw = self.busy_window()
            tuples = self.frontier()
            best = Q(0)
            critical: Optional[RequestTuple] = None
            screened = self._fused_backlog
            if screened is None and backend_mod.screens_enabled() and (
                backend_mod.op_backend("pinv", len(self.beta.segments))
                == "hybrid"
            ):
                screened = kernels.screened_backlog_max(
                    self.beta,
                    [tup.time for tup in tuples],
                    [tup.work for tup in tuples],
                )
            if screened is not None:
                best, idx = screened
                critical = tuples[idx] if idx is not None else None
            else:
                for tup in tuples:
                    b = tup.work - self.beta.at(tup.time)
                    if b > best:
                        best = b
                        critical = tup
            self._backlog_result = BacklogResult(
                backlog=best, busy_window=bw.length, critical_tuple=critical
            )
            if self._persist:
                result_cache.put_analysis(
                    "ctx.backlog", self.task, self.beta, self._backlog_result
                )
        return self._backlog_result
