"""Multi-task composition: sharing one resource among several workloads.

The structural delay analysis takes a *service curve*; resource sharing is
therefore expressed by transforming curves:

* static priority — each task sees the *leftover service* of the resource
  after all higher-priority request bounds
  (``beta_i = [beta - sum_{j<i} rbf_j]`` with the running-max closure);
* FIFO aggregation — the aggregate request bound of all tasks against the
  full service gives a delay bound for every job in the aggregate.

Exact structural analysis of *several* interleaved DRT tasks would need a
multi-clock product graph (not a DRT); like the paper, we compose through
curves and keep structure within each task.  This is documented as a
reconstruction decision in DESIGN.md.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro._numeric import Q, NumLike, as_q, is_inf
from repro.core.busy_window import busy_window_bound
from repro.core.delay import DelayResult, structural_delay
from repro.drt.model import DRTTask
from repro.drt.request import rbf_curve
from repro.errors import AnalysisError, UnboundedBusyWindowError
from repro.minplus.curve import Curve
from repro.minplus.deviation import horizontal_deviation

__all__ = [
    "leftover_service",
    "sp_structural_delays",
    "fifo_rtc_delay",
    "aggregate_rbf",
]


def leftover_service(beta: Curve, alpha: Curve) -> Curve:
    """Service remaining after serving interference bounded by *alpha*.

    The standard preemptive leftover bound
    ``beta'(t) = sup_{0<=s<=t} (beta(s) - alpha(s))`` clipped at zero.
    The running-max closure keeps the curve nondecreasing; the result is a
    valid lower service curve for the lower-priority workload.
    """
    return (beta - alpha).running_max().nonneg()


def aggregate_rbf(
    tasks: Sequence[DRTTask], horizon: NumLike
) -> Curve:
    """Sum of the request bound functions of *tasks* (FIFO aggregate)."""
    if not tasks:
        raise AnalysisError("aggregate_rbf needs at least one task")
    hz = as_q(horizon)
    total = rbf_curve(tasks[0], hz)
    for task in tasks[1:]:
        total = total + rbf_curve(task, hz)
    return total


def fifo_rtc_delay(
    tasks: Sequence[DRTTask],
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    max_iterations: int = 40,
) -> Fraction:
    """RTC delay bound for FIFO-served aggregate structural workload.

    Computes ``hdev(sum_i rbf_i, beta)`` with horizon iteration: the
    horizon doubles until the aggregate curve drops below the service
    strictly inside the exactly-known region.
    """
    from repro.core.busy_window import last_positive_time
    from repro.minplus.deviation import horizontal_deviation

    horizon = as_q(initial_horizon) if initial_horizon is not None else Q(64)
    for _ in range(max_iterations):
        alpha = aggregate_rbf(tasks, horizon)
        try:
            last = last_positive_time(alpha - beta)
        except UnboundedBusyWindowError:
            # The aggregate tail carries the exact sum of long-run rates:
            # a positive tail means genuine overload, not a short horizon.
            raise UnboundedBusyWindowError(
                f"aggregate workload rate {alpha.tail_rate} saturates the "
                f"service rate {beta.tail_rate}"
            ) from None
        if last is None or last < horizon:
            d = horizontal_deviation(alpha, beta)
            if is_inf(d):  # pragma: no cover - tail already checked
                raise UnboundedBusyWindowError("aggregate deviation infinite")
            return d
        horizon *= 2
    raise UnboundedBusyWindowError(
        f"aggregate workload did not stabilise within {max_iterations} "
        "horizon doublings"
    )  # pragma: no cover - exact tails close within a few doublings


def sp_structural_delays(
    tasks: Sequence[DRTTask],
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    preemptive: bool = True,
) -> Dict[str, DelayResult]:
    """Structural delay of each task under static-priority sharing.

    *tasks* are ordered highest priority first.  Task *i* is analysed
    against the leftover service after the request bounds of tasks
    ``0..i-1``.  Interference horizons are driven by each analysis' own
    busy window: the leftover curve is rebuilt with a doubled horizon
    until the victim's busy window closes inside the exactly-known
    region of every interferer's request bound.

    With ``preemptive=False`` each task additionally suffers a classical
    *blocking* term: one lower-priority job that started just before the
    busy window runs to completion, modelled by delaying the leftover
    service by ``B_i = max lower-priority WCET`` (a burst the server must
    clear first: ``beta_i'(t) = [beta_i(t) - B_i]^+``).

    Returns:
        Mapping from task name to its :class:`DelayResult`.
    """
    results: Dict[str, DelayResult] = {}
    for i, task in enumerate(tasks):
        interferers = tasks[:i]
        blocking = Q(0)
        if not preemptive:
            lower = tasks[i + 1 :]
            if lower:
                blocking = max(t.max_wcet for t in lower)
        results[task.name] = _sp_delay_one(
            task, interferers, beta, initial_horizon, blocking=blocking
        )
    return results


def _sp_delay_one(
    task: DRTTask,
    interferers: Sequence[DRTTask],
    beta: Curve,
    initial_horizon: Optional[NumLike],
    max_iterations: int = 40,
    blocking: Q = Q(0),
) -> DelayResult:
    horizon = as_q(initial_horizon) if initial_horizon is not None else Q(64)
    previous: Optional[DelayResult] = None
    for _ in range(max_iterations):
        beta_left = beta
        for other in interferers:
            beta_left = leftover_service(beta_left, rbf_curve(other, horizon))
        if blocking > 0:
            from repro.minplus.builders import constant

            beta_left = (beta_left - constant(blocking)).nonneg()
        if beta_left.tail_rate <= 0 and interferers:
            # Interference tails carry the exact long-run rates, so an
            # exhausted leftover rate is permanent saturation.
            raise UnboundedBusyWindowError(
                f"higher-priority workload saturates the service before "
                f"{task.name!r}"
            )
        try:
            result = structural_delay(task, beta_left, initial_horizon=horizon)
        except UnboundedBusyWindowError:
            raise UnboundedBusyWindowError(
                f"leftover service rate {beta_left.tail_rate} cannot sustain "
                f"{task.name!r}"
            ) from None
        if previous is not None and result.delay == previous.delay:
            # Doubling the interference exactness horizon changed nothing:
            # converged.
            return result
        previous = result
        horizon *= 2
    return previous  # sound (conservative interference tails); best known
