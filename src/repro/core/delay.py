"""Structure-aware worst-case delay analysis (the paper's contribution).

Setting: a structural task (DRT graph) releases jobs that are served in
release order by a resource guaranteeing a lower service curve ``beta``
(e.g. full speed minus interference).  The worst-case delay of a job is
bounded by examining its *busy window*: the job released at offset ``t``
after the busy-window start, with cumulative path work ``w`` (its own WCET
included), finishes no later than ``beta^{-1}(w)`` after the window start,
hence its delay is at most ``beta^{-1}(w) - t``.

The analysis therefore maximises ``beta^{-1}(w) - t`` over all *request
tuples* ``(t, w)`` reachable in the task graph within the busy window
bound ``L``.  Crucially, ``t`` and ``w`` always come from the same path:
the arrival-curve baseline (:func:`repro.core.baselines.rtc_delay`)
maximises the same expression over the *closure* ``{(t, rbf(t))}`` which
mixes the fastest time of one path with the heaviest work of another, and
is therefore never smaller and often much larger.

``structural_delay`` is exact for this semantics —
:func:`exhaustive_delay` (brute-force path enumeration) returns the same
value, and the discrete-event simulator realises it with the witness path
under an adversarial service process.

By default the analysis runs on the incremental engine: the busy window,
the frontier (from the task's shared
:class:`~repro.drt.request.FrontierExplorer`) and the batched per-tuple
pseudo-inverses are memoized per ``(task, beta)`` in
:class:`~repro.core.context.AnalysisContext`.  ``reuse=False`` runs the
historical from-scratch pipeline — private exploration per call, scalar
pseudo-inverse per tuple — which the benchmarks use as the reference the
incremental engine must match bound-for-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro._numeric import Q, NumLike, is_inf
from repro.core.busy_window import BusyWindow, busy_window_bound
from repro.drt.model import DRTTask
from repro.drt.paths import Path, iter_paths
from repro.drt.request import (
    FrontierExplorer,
    FrontierStats,
    RequestTuple,
    request_frontier,
)
from repro.errors import AnalysisError
from repro.minplus.curve import Curve
from repro.minplus.deviation import (
    lower_pseudo_inverse,
    lower_pseudo_inverse_batch,
)

__all__ = [
    "DelayResult",
    "structural_delay",
    "structural_delays_per_job",
    "exhaustive_delay",
    "critical_path_of",
]


@dataclass(frozen=True)
class DelayResult:
    """Result of a structural delay analysis.

    Attributes:
        delay: Worst-case delay bound.
        busy_window: Busy window bound ``L`` used to truncate exploration.
        horizon: Exactness horizon of the request bound fixpoint.
        critical_tuple: The ``(t, w, vertex)`` request tuple realising the
            bound (None when the bound is 0 and no tuple exceeded it).
        tuple_count: Number of Pareto tuples examined.
        stats: Exploration statistics (expansion/pruning counters).
    """

    delay: Fraction
    busy_window: Fraction
    horizon: Fraction
    critical_tuple: Optional[RequestTuple]
    tuple_count: int
    stats: FrontierStats


def _delay_of_tuple(beta: Curve, time: Q, work: Q) -> Q:
    inv = lower_pseudo_inverse(beta, work)
    if is_inf(inv):
        raise AnalysisError(
            f"service curve never provides {work} units of work"
        )
    return inv - time


def _tuple_delays(beta: Curve, tuples: List[RequestTuple]) -> List[Q]:
    """Batched ``beta^{-1}(w) - t`` for every tuple, in tuple order."""
    invs = lower_pseudo_inverse_batch(beta, [t.work for t in tuples])
    for tup, inv in zip(tuples, invs):
        if is_inf(inv):
            raise AnalysisError(
                f"service curve never provides {tup.work} units of work"
            )
    return [inv - tup.time for tup, inv in zip(tuples, invs)]


def structural_delay(
    task: DRTTask,
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    prune: bool = True,
    reuse: bool = True,
) -> DelayResult:
    """Worst-case delay of structural workload *task* on service *beta*.

    Args:
        task: The structural workload (DRT task).
        beta: Lower service curve of the processing resource; must be
            nondecreasing with ``beta(0) == 0``-style semantics (work is
            never served before it could be).
        initial_horizon: Optional starting horizon for the busy-window
            fixpoint (see :func:`repro.core.busy_window.busy_window_bound`).
        prune: Apply Pareto domination pruning (disable only for the
            ablation experiment; exponentially slower).
        reuse: Serve the busy window, the frontier and the batched
            pseudo-inverses from the shared per-``(task, beta)``
            :class:`~repro.core.context.AnalysisContext` (default).
            ``False`` recomputes everything from scratch with the scalar
            pseudo-inverse — the benchmarks' reference; same result.

    Raises:
        UnboundedBusyWindowError: if the workload saturates the service.
    """
    if reuse and prune and initial_horizon is None:
        from repro.core.context import AnalysisContext

        return AnalysisContext.of(task, beta).delay_result()
    bw = busy_window_bound(
        task, beta, initial_horizon=initial_horizon, reuse=reuse
    )
    stats = FrontierStats()
    if reuse:
        tuples = request_frontier(task, bw.length, prune=prune, stats=stats)
        delays = _tuple_delays(beta, tuples)
    else:
        ex = FrontierExplorer(task, prune=prune)
        tuples = ex.tuples(bw.length)
        stats.add(ex.stats_at(bw.length))
        delays = [_delay_of_tuple(beta, t.time, t.work) for t in tuples]
    best = Q(0)
    critical: Optional[RequestTuple] = None
    for tup, d in zip(tuples, delays):
        if d > best:
            best = d
            critical = tup
    return DelayResult(
        delay=best,
        busy_window=bw.length,
        horizon=bw.horizon,
        critical_tuple=critical,
        tuple_count=len(tuples),
        stats=stats,
    )


def structural_delays_per_job(
    task: DRTTask,
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    reuse: bool = True,
) -> Dict[str, Fraction]:
    """Worst-case delay of each job *type* (graph vertex).

    This is the quantity schedulability needs: jobs of type ``v`` meet
    their deadline iff their delay bound is at most ``d(v)``.

    Returns:
        Mapping from job name to its delay bound.
    """
    if reuse and initial_horizon is None:
        from repro.core.context import AnalysisContext

        return AnalysisContext.of(task, beta).per_job()
    bw = busy_window_bound(
        task, beta, initial_horizon=initial_horizon, reuse=reuse
    )
    if reuse:
        tuples = request_frontier(task, bw.length)
        delay_list = _tuple_delays(beta, tuples)
    else:
        tuples = FrontierExplorer(task).tuples(bw.length)
        delay_list = [_delay_of_tuple(beta, t.time, t.work) for t in tuples]
    delays: Dict[str, Fraction] = {v: Q(0) for v in task.job_names}
    for tup, d in zip(tuples, delay_list):
        if d > delays[tup.vertex]:
            delays[tup.vertex] = d
    return delays


def exhaustive_delay(
    task: DRTTask,
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
) -> Fraction:
    """Brute-force reference: maximise over *all* paths, no abstraction.

    Exponential in the busy window; only usable on small instances.  By
    construction it equals :func:`structural_delay` — the property tests
    assert exactly that.
    """
    bw = busy_window_bound(task, beta, initial_horizon=initial_horizon)
    best = Q(0)
    for path in iter_paths(task, bw.length):
        d = _delay_of_tuple(beta, path.span, path.total_work)
        if d > best:
            best = d
    return best


def critical_path_of(
    task: DRTTask, result: DelayResult
) -> Optional[Path]:
    """A witness path realising the critical tuple of *result*.

    Reconstructs, by bounded forward search, a path ending at the
    critical tuple's vertex with exactly its span and total work.  The
    witness is what the simulator replays to demonstrate tightness.

    The search memoizes visited ``(vertex, span, work)`` states: distinct
    paths that converge on the same state (diamond-shaped graphs) reach
    exactly the same set of target states, so re-expanding the state
    cannot change whether a witness exists — only make the search
    exponential.

    Returns:
        A :class:`~repro.drt.paths.Path`, or None when the result has no
        critical tuple (zero delay).
    """
    tup = result.critical_tuple
    if tup is None:
        return None
    # Forward DFS from every start vertex, pruned by span and work bounds.
    target_v, target_t, target_w = tup.vertex, tup.time, tup.work
    seen: Set[Tuple[str, Q, Q]] = set()
    stack: List[Path] = []
    for v in task.job_names:
        p = Path((v,), (Q(0),), (task.wcet(v),))
        stack.append(p)
    while stack:
        path = stack.pop()
        state = (path.vertices[-1], path.span, path.total_work)
        if state in seen:
            continue
        seen.add(state)
        if (
            path.vertices[-1] == target_v
            and path.span == target_t
            and path.total_work == target_w
        ):
            return path
        last = path.vertices[-1]
        for edge in task.successors(last):
            t2 = path.span + edge.separation
            w2 = path.total_work + task.wcet(edge.dst)
            if t2 <= target_t and w2 <= target_w:
                stack.append(path.extended(task, edge.dst, edge.separation))
    raise AnalysisError(
        f"no path realises critical tuple {tup} — frontier inconsistent"
    )
