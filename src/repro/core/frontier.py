"""Pareto-frontier utilities shared by the structural analyses.

A request tuple ``(t, w)`` dominates ``(t', w')`` iff ``t <= t'`` and
``w >= w'``: it releases at least as much work at least as early, so it
can only produce a larger delay.  Every structural analysis maximises a
function that is monotone in this order, hence only the Pareto front of
the tuple set matters.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro._numeric import Q

__all__ = ["dominates", "pareto_front"]


def dominates(a: Tuple[Q, Q], b: Tuple[Q, Q]) -> bool:
    """True iff tuple *a* = (t, w) dominates tuple *b*."""
    return a[0] <= b[0] and a[1] >= b[1]


def pareto_front(tuples: Iterable[Tuple[Q, Q]]) -> List[Tuple[Q, Q]]:
    """The non-dominated subset, sorted by time (work strictly increasing).

    Args:
        tuples: ``(time, work)`` pairs from any number of per-vertex
            frontiers.
    """
    ordered = sorted(tuples, key=lambda tw: (tw[0], -tw[1]))
    front: List[Tuple[Q, Q]] = []
    best_work = None
    for t, w in ordered:
        if best_work is None or w > best_work:
            front.append((t, w))
            best_work = w
    return front
