"""Sensitivity analysis / service synthesis for structural workload.

Design questions a system architect asks once a delay analysis exists:

* *What is the slowest processor share that still meets a delay budget?*
  (:func:`min_service_rate`)
* *How much scheduling latency can the platform afford?*
  (:func:`max_service_latency`)
* *How far can the workload scale before the budget breaks?*
  (:func:`max_wcet_scale`)

All three exploit exact monotonicity of the structural delay bound in
the respective parameter and use rational bisection: the search interval
halves until it is narrower than *precision*, then the conservative end
is returned (a rate is rounded **up**, a latency/scale **down**), so the
answer always satisfies the budget exactly — verified by a final
analysis run.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Optional, Sequence

from repro._numeric import Q, NumLike, as_q
from repro.core.delay import structural_delay
from repro.drt.model import DRTTask
from repro.drt.transform import scale_wcets
from repro.drt.utilization import utilization
from repro.errors import AnalysisError, UnboundedBusyWindowError
from repro.minplus.builders import rate_latency
from repro.parallel.plane import JobsLike, parallel_map

__all__ = [
    "min_service_rate",
    "min_service_rates",
    "max_service_latency",
    "max_wcet_scale",
]


def _meets(task: DRTTask, rate: Q, latency: Q, budget: Q) -> bool:
    if rate <= 0:
        return False
    if utilization(task) >= rate:
        return False
    try:
        return structural_delay(task, rate_latency(rate, latency)).delay <= budget
    except UnboundedBusyWindowError:
        return False


def min_service_rate(
    task: DRTTask,
    latency: NumLike,
    delay_budget: NumLike,
    precision: NumLike = Q(1, 128),
    max_rate: NumLike = 1,
) -> Fraction:
    """Smallest rate ``R`` (within *precision*) with
    ``structural_delay(task, beta_{R, latency}) <= delay_budget``.

    Args:
        task: The structural workload.
        latency: Fixed service latency ``T``.
        delay_budget: Delay bound to meet.
        precision: Width at which bisection stops; the returned rate is
            the conservative (upper) end, so the budget is guaranteed.
        max_rate: Upper end of the search (e.g. 1 processor).

    Raises:
        AnalysisError: if even ``max_rate`` misses the budget.
    """
    lat, budget = as_q(latency), as_q(delay_budget)
    hi = as_q(max_rate)
    eps = as_q(precision)
    if eps <= 0:
        raise AnalysisError("precision must be positive")
    if not _meets(task, hi, lat, budget):
        raise AnalysisError(
            f"delay budget {budget} unreachable even at rate {hi}"
        )
    lo = Q(0)  # known-failing
    while hi - lo > eps:
        mid = (lo + hi) / 2
        if _meets(task, mid, lat, budget):
            hi = mid
        else:
            lo = mid
    return hi


def _rate_case(item) -> Fraction:
    task, latency, delay_budget, precision, max_rate = item
    return min_service_rate(task, latency, delay_budget, precision, max_rate)


def min_service_rates(
    tasks: Sequence[DRTTask],
    latency: NumLike,
    delay_budget: NumLike,
    precision: NumLike = Q(1, 128),
    max_rate: NumLike = 1,
    jobs: JobsLike = None,
) -> List[Fraction]:
    """:func:`min_service_rate` for many tasks in one call.

    The per-task bisections are independent, so with ``jobs > 1`` they
    fan out over the :mod:`repro.parallel` execution plane; rates come
    back in input order and are bit-identical to a serial loop, and the
    first infeasible task's :class:`AnalysisError` (in input order) is
    raised exactly as a serial loop would raise it.
    """
    items = [
        (task, latency, delay_budget, precision, max_rate) for task in tasks
    ]
    return parallel_map(_rate_case, items, jobs=jobs)


def max_service_latency(
    task: DRTTask,
    rate: NumLike,
    delay_budget: NumLike,
    precision: NumLike = Q(1, 128),
) -> Fraction:
    """Largest latency ``T`` (within *precision*) still meeting the budget.

    Raises:
        AnalysisError: if the budget fails even at zero latency.
    """
    r, budget = as_q(rate), as_q(delay_budget)
    eps = as_q(precision)
    if eps <= 0:
        raise AnalysisError("precision must be positive")
    if not _meets(task, r, Q(0), budget):
        raise AnalysisError(
            f"delay budget {budget} unreachable even with zero latency"
        )
    lo = Q(0)  # known-good
    hi = budget  # latency beyond the budget certainly fails (delay >= T)
    if _meets(task, r, hi, budget):
        return hi
    while hi - lo > eps:
        mid = (lo + hi) / 2
        if _meets(task, r, mid, budget):
            lo = mid
        else:
            hi = mid
    return lo


def max_wcet_scale(
    task: DRTTask,
    rate: NumLike,
    latency: NumLike,
    delay_budget: NumLike,
    precision: NumLike = Q(1, 128),
    max_scale: NumLike = 64,
) -> Fraction:
    """Largest uniform WCET scale factor still meeting the budget.

    Useful for headroom questions: "how much can this workload grow on
    the current platform?".

    Raises:
        AnalysisError: if the unscaled task already misses the budget.
    """
    r, lat, budget = as_q(rate), as_q(latency), as_q(delay_budget)
    eps = as_q(precision)
    if eps <= 0:
        raise AnalysisError("precision must be positive")

    def ok(scale: Q) -> bool:
        return _meets(scale_wcets(task, scale), r, lat, budget)

    if not ok(Q(1)):
        raise AnalysisError("the unscaled workload already misses the budget")
    lo = Q(1)  # known-good
    hi = as_q(max_scale)
    if ok(hi):
        return hi
    while hi - lo > eps:
        mid = (lo + hi) / 2
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo
