"""Baseline delay analyses the structural analysis is compared against.

* :func:`rtc_delay` — the real-time-calculus bound: abstract the task into
  its request bound function (an arrival curve) and take the horizontal
  deviation from the service curve.  Sound, and exact *for the curve* —
  all pessimism comes from the abstraction mixing incompatible paths.
* :func:`sporadic_delay` — the coarsest standard baseline: abstract the
  task into a sporadic task (max WCET, min separation) first.

Both bounds dominate the structural bound from above; the evaluation
measures by how much.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro._numeric import INF, Q, NumLike, is_inf
from repro.core.busy_window import busy_window_bound
from repro.drt.model import DRTTask, SporadicTask
from repro.drt.transform import sporadic_abstraction
from repro.errors import UnboundedBusyWindowError
from repro.minplus.builders import staircase
from repro.minplus.curve import Curve
from repro.minplus.deviation import horizontal_deviation, vertical_deviation

__all__ = [
    "rtc_delay",
    "sporadic_delay",
    "rtc_backlog",
    "token_bucket_delay",
    "concave_hull_delay",
    "concave_hull",
]


def rtc_delay(
    task: DRTTask,
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    reuse: bool = True,
) -> Fraction:
    """The arrival-curve (RTC) delay bound: ``hdev(rbf, beta)``.

    The request bound function is computed exactly up to the busy window
    bound; beyond it the curve lies below *beta* permanently, so the
    horizontal deviation is attained inside the exact region and the
    result does not suffer from the conservative finitary tail.
    """
    bw = busy_window_bound(
        task, beta, initial_horizon=initial_horizon, reuse=reuse
    )
    d = horizontal_deviation(bw.rbf, beta)
    if is_inf(d):  # pragma: no cover - excluded by the busy window check
        raise UnboundedBusyWindowError("horizontal deviation is infinite")
    return d


def rtc_backlog(
    task: DRTTask,
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    reuse: bool = True,
) -> Fraction:
    """The RTC backlog bound: ``vdev(rbf, beta)``."""
    bw = busy_window_bound(
        task, beta, initial_horizon=initial_horizon, reuse=reuse
    )
    v = vertical_deviation(bw.rbf, beta)
    if is_inf(v):  # pragma: no cover - excluded by the busy window check
        raise UnboundedBusyWindowError("vertical deviation is infinite")
    return v


def token_bucket_delay(task: DRTTask, beta: Curve) -> Fraction:
    """Delay bound from the linear (token-bucket) abstraction.

    Abstracts the task into the tight affine arrival curve
    ``B + rho * Delta`` (:func:`repro.drt.utilization.linear_request_bound`)
    — the one-segment concave approximation every fast curve tool can
    afford — and takes the horizontal deviation.
    """
    from repro.drt.utilization import linear_request_bound
    from repro.minplus.builders import affine

    burst, rho = linear_request_bound(task)
    if rho >= beta.tail_rate:
        raise UnboundedBusyWindowError(
            f"token-bucket rate {rho} >= service rate {beta.tail_rate}"
        )
    d = horizontal_deviation(affine(burst, rho), beta)
    if is_inf(d):  # pragma: no cover - rate checked above
        raise UnboundedBusyWindowError("token-bucket deviation infinite")
    return d


def concave_hull(curve: Curve, tail_rate: Fraction) -> Curve:
    """The least concave majorant of a staircase/PWL curve.

    Takes the upper convex hull (in the concave sense) of the curve's
    corner points together with the affine tail direction *tail_rate*:
    the k-segment concave arrival approximation classical RTC tools
    operate on.  The result dominates the input pointwise.
    """
    # Collect candidate points: post-jump values at breakpoints plus the
    # tail anchor.
    pts = []
    for t in curve.breakpoints():
        pts.append((t, curve.at(t)))
    # Upper hull with decreasing slopes (Andrew's monotone chain, upper).
    hull = []
    for p in pts:
        while len(hull) >= 2 and _cross(hull[-2], hull[-1], p) >= 0:
            hull.pop()
        hull.append(p)
    # Enforce the tail: final slope must be >= tail_rate; pop hull points
    # that would make the last segment flatter than the tail.
    while len(hull) >= 2:
        (t0, v0), (t1, v1) = hull[-2], hull[-1]
        if (v1 - v0) / (t1 - t0) < tail_rate:
            hull.pop()
        else:
            break
    from repro.minplus.segment import Segment

    segs = []
    for (t0, v0), (t1, v1) in zip(hull, hull[1:]):
        segs.append(Segment(t0, v0, (v1 - v0) / (t1 - t0)))
    t_last, v_last = hull[-1]
    if t_last == 0:
        segs = [Segment(Q(0), v_last, tail_rate)]
    else:
        segs.append(Segment(t_last, v_last, tail_rate))
    return Curve(segs)


def _cross(o, a, b) -> Fraction:
    """z-component of (a - o) x (b - o)."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def concave_hull_delay(
    task: DRTTask,
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    reuse: bool = True,
) -> Fraction:
    """Delay bound from the concave-hull abstraction of the request bound.

    The piecewise-linear concave majorant of the exact staircase — the
    multi-segment approximation RTC toolboxes use — sits between the
    token-bucket and the exact curve in precision.
    """
    bw = busy_window_bound(
        task, beta, initial_horizon=initial_horizon, reuse=reuse
    )
    hull = concave_hull(bw.rbf, bw.rbf.tail_rate)
    d = horizontal_deviation(hull, beta)
    if is_inf(d):
        raise UnboundedBusyWindowError("concave-hull deviation infinite")
    return d


def sporadic_delay(task: DRTTask, beta: Curve) -> Fraction:
    """Delay bound after sporadic abstraction (max WCET, min separation).

    Raises:
        UnboundedBusyWindowError: when the abstraction saturates the
            service even though the structural task may not (this is the
            point of the precision comparison: the coarse model often
            *cannot be analysed at all*).
    """
    sp = sporadic_abstraction(task)
    return sporadic_task_delay(sp, beta)


def sporadic_task_delay(sp: SporadicTask, beta: Curve) -> Fraction:
    """Delay bound of a classical sporadic task on service *beta*."""
    rate = sp.wcet / sp.period
    if rate >= beta.tail_rate:
        raise UnboundedBusyWindowError(
            f"sporadic abstraction utilization {rate} >= service rate "
            f"{beta.tail_rate}"
        )
    # Iterate the staircase horizon until the deviation is attained
    # strictly inside the exact region (tail slope of the staircase is the
    # exact long-run rate, so a couple of doublings always suffice).
    horizon = max(sp.period * 4, beta.last_breakpoint * 2, Q(1))
    for _ in range(64):
        alpha = staircase(sp.wcet, sp.period, horizon)
        d = horizontal_deviation(alpha, beta)
        alpha_next = staircase(sp.wcet, sp.period, horizon * 2)
        d_next = horizontal_deviation(alpha_next, beta)
        if not is_inf(d) and d == d_next:
            return d
        horizon *= 2
    raise UnboundedBusyWindowError(
        "sporadic delay bound did not stabilise"
    )  # pragma: no cover
