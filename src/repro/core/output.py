"""Output (departure) bounds of processed structural workload.

When a structural task's jobs are served by a resource with lower
service curve ``beta``, the departing stream is again curve-constrained:
the classical bound is the min-plus deconvolution ``rbf (/) beta``.  This
module packages that propagation so a structural task can feed a
downstream real-time-calculus network (see :mod:`repro.rtc`), and also
provides the cheaper *delay-shift* bound ``rbf(Delta + D*)`` obtained
from the structural delay bound — the two are incomparable in general,
so the default takes their pointwise minimum.
"""

from __future__ import annotations

from typing import Optional

from repro._numeric import Q, NumLike
from repro.core.busy_window import busy_window_bound
from repro.core.delay import structural_delay
from repro.drt.model import DRTTask
from repro.minplus.convolution import min_plus_deconv
from repro.minplus.curve import Curve

__all__ = ["output_arrival_curve"]


def output_arrival_curve(
    task: DRTTask,
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    method: str = "best",
    reuse: bool = True,
) -> Curve:
    """Upper arrival curve of the task's *departures* from service *beta*.

    Args:
        task: The structural workload.
        beta: Lower service curve it is processed by.
        initial_horizon: Optional fixpoint starting horizon.
        method: ``"deconvolution"`` for ``rbf (/) beta``, ``"delay"`` for
            the delay-shifted request bound ``Delta -> rbf(Delta + D*)``,
            or ``"best"`` (default) for their pointwise minimum.
        reuse: Serve the busy window and delay from the shared analysis
            caches (default).  ``False`` recomputes both from scratch —
            the historical cost model the benchmarks compare against.

    Returns:
        A sound upper arrival curve for the processed stream (valid input
        to :func:`repro.rtc.gpc.gpc` or another delay analysis).

    Raises:
        ValueError: on an unknown *method*.
        UnboundedBusyWindowError: if the workload saturates the service.
    """
    if method not in ("deconvolution", "delay", "best"):
        raise ValueError(f"unknown method {method!r}")
    bw = busy_window_bound(
        task, beta, initial_horizon=initial_horizon, reuse=reuse
    )
    curves = []
    if method in ("deconvolution", "best"):
        # The deconvolution bounds the *fluid* served work; jobs depart
        # atomically at their completion instant, so a window whose start
        # coincides with a completion counts work served earlier — up to
        # one maximal job.  The packetisation term keeps the bound valid
        # for job-granular (closed-window) departure counting.
        fluid = min_plus_deconv(bw.rbf, beta, on_dip="fill")
        curves.append(fluid.vshift(task.max_wcet))
    if method in ("delay", "best"):
        # Work leaving within a window of length t entered within t + D*
        # (every job departs at most D* after its release), so the
        # delay-advanced request bound constrains the departures.
        delay = structural_delay(
            task,
            beta,
            initial_horizon=None if reuse else bw.horizon,
            reuse=reuse,
        ).delay
        curves.append(bw.rbf.advance(delay))
    out = curves[0]
    for c in curves[1:]:
        out = out.minimum(c)
    return out
