"""The paper's contribution: structure-aware delay analysis.

Given structural workload (a DRT task) served by a resource with a lower
service curve, :func:`~repro.core.delay.structural_delay` computes the
worst-case job delay by exploring the task graph directly — pairing each
candidate job only with work its *own* path released — instead of first
flattening the task into an arrival curve.  The module also provides the
classical baselines (arrival-curve / RTC delay, sporadic abstraction) and
multi-task composition via leftover service curves.
"""

from repro.core.busy_window import busy_window_bound, BusyWindow
from repro.core.frontier import pareto_front, dominates
from repro.core.delay import (
    DelayResult,
    structural_delay,
    structural_delays_per_job,
    exhaustive_delay,
    critical_path_of,
)
from repro.core.baselines import (
    rtc_delay,
    sporadic_delay,
    rtc_backlog,
)
from repro.core.backlog import BacklogResult, structural_backlog
from repro.core.context import AnalysisContext
from repro.core.facade import (
    StructuralAnalysis,
    TaskAnalysisSummary,
    analyze_many,
)
from repro.core.output import output_arrival_curve
from repro.core.sensitivity import (
    max_service_latency,
    max_wcet_scale,
    min_service_rate,
    min_service_rates,
)
from repro.core.multi import (
    leftover_service,
    sp_structural_delays,
    fifo_rtc_delay,
    aggregate_rbf,
)

__all__ = [
    "busy_window_bound",
    "BusyWindow",
    "pareto_front",
    "dominates",
    "DelayResult",
    "structural_delay",
    "structural_delays_per_job",
    "exhaustive_delay",
    "critical_path_of",
    "rtc_delay",
    "sporadic_delay",
    "rtc_backlog",
    "leftover_service",
    "sp_structural_delays",
    "fifo_rtc_delay",
    "aggregate_rbf",
    "StructuralAnalysis",
    "TaskAnalysisSummary",
    "analyze_many",
    "AnalysisContext",
    "BacklogResult",
    "structural_backlog",
    "output_arrival_curve",
    "min_service_rate",
    "min_service_rates",
    "max_service_latency",
    "max_wcet_scale",
]
