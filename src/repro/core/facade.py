"""One-stop analysis facade for a (task, service) pair.

Most workflows ask several questions about the same pair — delay, per-job
delays, backlog, witness, output curve, baselines.
:class:`StructuralAnalysis` answers every one from the shared
per-``(task, beta)`` :class:`~repro.core.context.AnalysisContext` (the
busy-window fixpoint, the frontier and the batched per-tuple
pseudo-inverses are each computed once) and additionally caches the
derived results per instance::

    analysis = StructuralAnalysis(task, beta)
    analysis.delay()             # worst-case delay
    analysis.per_job()           # {job: delay}
    analysis.backlog()           # buffer bound
    analysis.witness()           # a Path realising the delay
    analysis.output_curve()      # departures for the next hop
    analysis.baselines()         # the abstraction spectrum
    analysis.report()            # human-readable summary

Batch workloads — analysing many tasks against one service curve — go
through :func:`analyze_many`, which fans the independent per-task
analyses out over the :mod:`repro.parallel` execution plane and returns
one pickle-friendly :class:`TaskAnalysisSummary` per task, in input
order, bit-identical to a serial loop.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro._numeric import Q, NumLike
from repro.core.backlog import BacklogResult, structural_backlog
from repro.core.baselines import (
    concave_hull_delay,
    sporadic_delay,
    token_bucket_delay,
)
from repro.core.busy_window import BusyWindow, busy_window_bound
from repro.core.delay import (
    DelayResult,
    critical_path_of,
    structural_delay,
    structural_delays_per_job,
)
from repro.core.output import output_arrival_curve
from repro.drt.model import DRTTask
from repro.drt.paths import Path
from repro.errors import UnboundedBusyWindowError
from repro.minplus import backend as backend_mod
from repro.minplus.curve import Curve
from repro.parallel.plane import JobsLike, parallel_map

__all__ = ["StructuralAnalysis", "TaskAnalysisSummary", "analyze_many"]


class StructuralAnalysis:
    """Cached structural analyses of one workload on one service.

    Args:
        task: The structural workload.
        beta: Lower service curve of the resource.
        initial_horizon: Optional starting horizon for the fixpoints.
        backend: Kernel backend used for every analysis this instance
            runs (see :mod:`repro.minplus.backend`); ``None`` follows the
            ambient setting.  Bounds are identical under both backends.
    """

    def __init__(
        self,
        task: DRTTask,
        beta: Curve,
        initial_horizon: Optional[NumLike] = None,
        backend: Optional[str] = None,
    ):
        self.task = task
        self.beta = beta
        self._initial_horizon = initial_horizon
        self._backend = backend_mod.resolve_backend(backend) if backend else None
        self._busy: Optional[BusyWindow] = None
        self._delay: Optional[DelayResult] = None
        self._per_job: Optional[Dict[str, Fraction]] = None
        self._backlog: Optional[BacklogResult] = None
        self._witness: Optional[Path] = None
        self._output: Optional[Curve] = None

    # -- cached building blocks -----------------------------------------

    def _scoped(self):
        """Backend scope for one analysis call (no-op when unset)."""
        if self._backend is None:
            return nullcontext()
        return backend_mod.use_backend(self._backend)

    def busy_window(self) -> BusyWindow:
        """The busy-window fixpoint (cached)."""
        if self._busy is None:
            with self._scoped():
                self._busy = busy_window_bound(
                    self.task, self.beta, initial_horizon=self._initial_horizon
                )
        return self._busy

    def delay_result(self) -> DelayResult:
        """The full delay analysis result (cached)."""
        if self._delay is None:
            with self._scoped():
                self._delay = structural_delay(
                    self.task,
                    self.beta,
                    initial_horizon=self._initial_horizon,
                )
        return self._delay

    # -- the questions ----------------------------------------------------

    def delay(self) -> Fraction:
        """Worst-case delay of any job."""
        return self.delay_result().delay

    def per_job(self) -> Dict[str, Fraction]:
        """Worst-case delay per job type (cached)."""
        if self._per_job is None:
            with self._scoped():
                self._per_job = structural_delays_per_job(
                    self.task,
                    self.beta,
                    initial_horizon=self._initial_horizon,
                )
        return dict(self._per_job)

    def backlog(self) -> Fraction:
        """Worst-case buffered work."""
        if self._backlog is None:
            with self._scoped():
                self._backlog = structural_backlog(
                    self.task,
                    self.beta,
                    initial_horizon=self._initial_horizon,
                )
        return self._backlog.backlog

    def witness(self) -> Optional[Path]:
        """A path realising the worst-case delay (cached)."""
        if self._witness is None:
            self._witness = critical_path_of(self.task, self.delay_result())
        return self._witness

    def output_curve(self, method: str = "best") -> Curve:
        """Departure arrival curve for a downstream component."""
        if self._output is None or method != "best":
            with self._scoped():
                curve = output_arrival_curve(
                    self.task,
                    self.beta,
                    initial_horizon=self._initial_horizon,
                    method=method,
                )
            if method == "best":
                self._output = curve
            return curve
        return self._output

    def meets_deadlines(self) -> bool:
        """True iff every job type's delay bound is within its deadline."""
        return all(
            d <= self.task.deadline(v) for v, d in self.per_job().items()
        )

    def baselines(self) -> Dict[str, object]:
        """The abstraction spectrum's bounds for comparison.

        Values are rationals, or the string ``"unbounded"`` when an
        abstraction saturates the service.
        """
        out: Dict[str, object] = {"structural": self.delay()}
        for label, fn in (
            ("concave-hull", concave_hull_delay),
            ("token-bucket", token_bucket_delay),
            ("sporadic", sporadic_delay),
        ):
            try:
                out[label] = fn(self.task, self.beta)
            except UnboundedBusyWindowError:
                out[label] = "unbounded"
        return out

    def report(self) -> str:
        """Multi-line human-readable summary of every cached analysis."""
        res = self.delay_result()
        lines = [
            f"task {self.task.name!r}: {len(self.task.jobs)} jobs, "
            f"{len(self.task.edges)} edges",
            f"worst-case delay:  {res.delay}",
            f"worst-case backlog: {self.backlog()}",
            f"busy window:       {res.busy_window}",
            f"deadlines met:     {self.meets_deadlines()}",
            "per-job delays:",
        ]
        for job, d in sorted(self.per_job().items()):
            verdict = "ok" if d <= self.task.deadline(job) else "MISS"
            lines.append(
                f"  {job}: {d} (deadline {self.task.deadline(job)}) {verdict}"
            )
        lines.append("abstraction spectrum:")
        for label, value in self.baselines().items():
            lines.append(f"  {label}: {value}")
        witness = self.witness()
        if witness is not None:
            lines.append(
                "witness path: " + " -> ".join(witness.vertices)
            )
        return "\n".join(lines)

    def summary(self) -> "TaskAnalysisSummary":
        """The headline bounds as one pickle-friendly record."""
        witness = self.witness()
        return TaskAnalysisSummary(
            task=self.task.name,
            delay=self.delay(),
            backlog=self.backlog(),
            busy_window=self.busy_window().length,
            per_job=self.per_job(),
            meets_deadlines=self.meets_deadlines(),
            witness_vertices=(
                tuple(witness.vertices) if witness is not None else None
            ),
        )


@dataclass(frozen=True)
class TaskAnalysisSummary:
    """Headline structural bounds of one task on one service curve.

    Attributes:
        task: Task name.
        delay: Worst-case delay of any job.
        backlog: Worst-case buffered work.
        busy_window: Busy-window length bound.
        per_job: ``{job: delay bound}``.
        meets_deadlines: True iff every per-job bound is within its own
            relative deadline.
        witness_vertices: Vertex sequence of a delay-realising path, or
            None when no job is delayed.
    """

    task: str
    delay: Fraction
    backlog: Fraction
    busy_window: Fraction
    per_job: Dict[str, Fraction]
    meets_deadlines: bool
    witness_vertices: Optional[tuple]


def _analyze_one(item) -> TaskAnalysisSummary:
    """One task's full summary (module-level: ships to plane workers)."""
    task, beta, initial_horizon, backend = item
    return StructuralAnalysis(
        task, beta, initial_horizon=initial_horizon, backend=backend
    ).summary()


def analyze_many(
    tasks: Sequence[DRTTask],
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    backend: Optional[str] = None,
    jobs: JobsLike = None,
) -> List[TaskAnalysisSummary]:
    """Analyse many independent tasks against one service curve.

    Args:
        tasks: The structural workloads (analysed independently — no
            interference between them; use the scheduling analyses for
            shared-resource semantics).
        beta: Lower service curve each task is analysed against.
        initial_horizon: Optional starting horizon for the fixpoints.
        backend: Kernel backend override applied to every analysis.
        jobs: Fan the per-task analyses out over worker processes
            (``REPRO_JOBS``/serial by default).  Summaries come back in
            input order and are bit-identical to a serial run; the first
            failing task's error (in input order) is raised, as a serial
            loop would.

    Returns:
        One :class:`TaskAnalysisSummary` per task, in input order.

    Raises:
        TypeError: when handed :class:`repro.mp.model.DAGTask`
            instances — parallel DAG jobs have no single-β semantics;
            their batch facade is :func:`repro.mp.dag_rta_many`.
    """
    from repro.mp.model import DAGTask

    for task in tasks:
        if isinstance(task, DAGTask):
            raise TypeError(
                "analyze_many analyses DRT tasks against one service "
                "curve; for multiprocessor DAG tasks use "
                "repro.mp.dag_rta_many"
            )
    items = [(task, beta, initial_horizon, backend) for task in tasks]
    return parallel_map(_analyze_one, items, jobs=jobs)
