"""Busy-window bounds: the finitary horizon of every delay analysis.

The *busy window bound* of workload with request bound ``rbf`` on service
``beta`` is ``L = sup { t : rbf(t) > beta(t) }``: beyond ``L`` accumulated
service has permanently caught up with the worst-case accumulated
requests, so no busy period is longer than ``L`` and no job released more
than ``L`` after its busy-window start can exist.  Every exploration in
this library is truncated at ``L`` — the fixpoint search that dominates
analysis cost at high utilization.

The request bound function of a structural task is only known exactly up
to a chosen horizon (its tail is a sound but loose affine bound, see
:func:`repro.drt.request.rbf_curve`), so the bound is computed by
*horizon iteration*: start from an estimate, and double the horizon until
the busy window closes strictly inside the exactly-known region.

Two cost models coexist behind the ``reuse`` flag:

* ``reuse=True`` (default) — the iteration draws its request curves from
  the task's shared :class:`~repro.drt.request.FrontierExplorer`, so each
  doubling round only pays for the exploration the new horizon adds, and
  the closed fixpoint is memoized per ``(task, beta)`` so every later
  analysis (delay, backlog, per-job, the baselines) reuses it for free.
* ``reuse=False`` — the historical cost model: every round re-explores
  the frontier from scratch and nothing is memoized.  The benchmarks use
  it as the from-scratch reference that the incremental engine must match
  bound-for-bound.

Both modes iterate the *same* horizon sequence from the same initial
estimate, so the returned :class:`BusyWindow` (length, horizon,
iterations, and the attached request curve) is bit-identical between
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro import perf
from repro._numeric import Q, NumLike, as_q
from repro.drt.model import DRTTask
from repro.drt.request import FrontierExplorer, rbf_curve
from repro.drt.utilization import utilization
from repro.errors import HorizonExceededError, UnboundedBusyWindowError
from repro.minplus.curve import Curve
from repro.resilience.budget import checkpoint

__all__ = ["BusyWindow", "busy_window_bound", "last_positive_time"]

#: Memo of the fixpoint step ``last_positive_time(rbf - beta)`` keyed by
#: the curve pair itself.  The step is a pure function of the two curves
#: (both immutable with cached structural hashes), so distinct tasks that
#: produce the *same* request staircase — e.g. a what-if sweep retiming
#: an edge whose work never sets the running maximum — share one curve
#: subtraction instead of repeating it per variant.  The stored budget
#: charge is replayed on hits so resilience accounting is identical
#: either way.
_FIXPOINT_MEMO: dict = {}
_FIXPOINT_MEMO_CAP = 512


@dataclass(frozen=True)
class BusyWindow:
    """Result of a busy-window computation.

    Attributes:
        length: The busy window bound ``L``.
        horizon: The exactness horizon at which the fixpoint closed.
        iterations: Number of horizon-doubling rounds used.
        rbf: The request bound curve at the final horizon (reusable by
            the delay analyses, which need tuples up to ``L <= horizon``).
    """

    length: Fraction
    horizon: Fraction
    iterations: int
    rbf: Curve


def last_positive_time(diff: Curve) -> Optional[Q]:
    """``sup { t : diff(t) > 0 }`` for a curve with eventually negative
    tail; None if the curve is never positive.

    Raises:
        UnboundedBusyWindowError: if the tail keeps the curve positive
            forever (tail rate > 0, or rate 0 with positive tail values).
    """
    tail = diff.tail
    if tail.slope > 0 or (tail.slope == 0 and tail.value > 0):
        raise UnboundedBusyWindowError(
            "workload never lets the service catch up (positive tail)"
        )
    best: Optional[Q] = None
    starts = diff.breakpoints()
    for i, seg in enumerate(diff.segments):
        end = starts[i + 1] if i + 1 < len(starts) else None
        if end is None:
            # Tail: slope <= 0; positive until it crosses zero.
            if seg.value > 0:
                if seg.slope == 0:  # pragma: no cover - guarded above
                    raise UnboundedBusyWindowError("constant positive tail")
                best = seg.start + seg.value / (-seg.slope)
            continue
        v_end = seg.value_at(end)
        if seg.value > 0 or v_end > 0:
            if v_end > 0:
                candidate = end  # positive up to the segment end (limit)
            else:
                # Crosses zero inside the segment.
                candidate = seg.start + seg.value / (-seg.slope)
            if best is None or candidate > best:
                best = candidate
    return best


def busy_window_bound(
    task: DRTTask,
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    max_iterations: int = 40,
    reuse: bool = True,
) -> BusyWindow:
    """Busy window bound of structural workload *task* on service *beta*.

    Args:
        task: The structural workload.
        beta: Lower service curve (nondecreasing, ``beta.tail_rate > 0``
            unless the workload is finite).
        initial_horizon: Starting exactness horizon; default is an affine
            estimate from the workload burst and the rate gap.
        max_iterations: Safety cap on horizon doublings.
        reuse: Serve request curves from the task's shared frontier
            explorer and memoize the result per ``(task, beta)``
            (default).  ``False`` re-explores from scratch every round —
            the benchmarks' from-scratch reference; same result.

    Raises:
        UnboundedBusyWindowError: if long-run utilization reaches the
            service rate (``utilization(task) >= beta.tail_rate``) so no
            finite busy window exists in general.
        HorizonExceededError: if the fixpoint did not close within
            ``max_iterations`` doublings (pathological parameters).
    """
    rho = utilization(task)
    if rho >= beta.tail_rate and task.has_cycle():
        raise UnboundedBusyWindowError(
            f"utilization {rho} >= long-run service rate {beta.tail_rate}"
        )
    key = None
    cache = None
    if reuse:
        from repro.drt.digest import guard_cache

        cache = guard_cache(task)
        key = (
            "busy_window",
            beta,
            None if initial_horizon is None else as_q(initial_horizon),
            max_iterations,
        )
        cached = cache.get(key)
        if cached is not None:
            perf.record("busy_window.cache_hits")
            return cached
    with perf.timed("busy_window"):
        result = _iterate(
            task, beta, rho, initial_horizon, max_iterations, reuse
        )
    if key is not None:
        cache[key] = result
        perf.record("busy_window.cache_misses")
    return result


def _iterate(
    task: DRTTask,
    beta: Curve,
    rho: Q,
    initial_horizon: Optional[NumLike],
    max_iterations: int,
    reuse: bool,
) -> BusyWindow:
    """The horizon-doubling fixpoint iteration (shared by both modes)."""
    if initial_horizon is not None:
        horizon = as_q(initial_horizon)
    else:
        horizon = _initial_estimate(task, beta, rho)
    for iteration in range(1, max_iterations + 1):
        if reuse:
            rbf = rbf_curve(task, horizon)
        else:
            rbf = FrontierExplorer(task).rbf_curve(horizon)
        memo_key = (rbf, beta)
        hit = _FIXPOINT_MEMO.get(memo_key)
        if hit is not None:
            last, charge = hit
            checkpoint(charge)
            perf.record("busy_window.fixpoint_memo_hits")
        else:
            diff = rbf - beta
            # One budget unit per doubling round plus an amortised charge
            # for the curve arithmetic (the exploration inside rbf_curve
            # already checkpoints per expanded tuple).
            charge = 1 + len(diff.segments) // 64
            checkpoint(charge)
            try:
                last = last_positive_time(diff)
            except UnboundedBusyWindowError:
                # The request curve's tail carries the exact long-run
                # rate, so a positive tail cannot be an artefact of a
                # short horizon: the service genuinely never catches up.
                raise UnboundedBusyWindowError(
                    f"service (rate {beta.tail_rate}) never catches up "
                    f"with workload of {task.name!r} (rate {rho}, "
                    "positive burst)"
                ) from None
            if len(_FIXPOINT_MEMO) >= _FIXPOINT_MEMO_CAP:
                _FIXPOINT_MEMO.clear()
            _FIXPOINT_MEMO[memo_key] = (last, charge)
        if last is None:
            # Service dominates from the start; the only busy "window" is
            # the instantaneous burst at 0.
            return BusyWindow(Q(0), horizon, iteration, rbf)
        if last < horizon:
            return BusyWindow(last, horizon, iteration, rbf)
        horizon *= 2
    raise HorizonExceededError(
        f"busy window did not close within {max_iterations} horizon "
        f"doublings (final horizon {horizon})"
    )


def _initial_estimate(task: DRTTask, beta: Curve, rho: Q) -> Q:
    """Affine estimate of the busy window: solve burst + rho*t = beta-line.

    Uses the tail line of *beta* (rate ``R`` from offset ``(t0, v0)``) and
    a crude burst bound (max WCET times vertex count, covering any acyclic
    prefix): ``t = (burst + R*t0 - v0) / (R - rho)``.
    """
    burst = task.max_wcet * len(task.job_names)
    t0 = beta.last_breakpoint
    v0 = beta.at(t0)
    rate = beta.tail_rate
    if rate <= rho:
        # Acyclic workload (rho == 0 == rate impossible here since the
        # unbounded check passed); fall back to a span-based horizon.
        total_sep = sum((e.separation for e in task.edges), Q(0))
        return max(Q(1), total_sep)
    est = (burst + rate * t0 - v0) / (rate - rho)
    return max(est, Q(1))
