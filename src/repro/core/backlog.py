"""Structure-aware worst-case backlog analysis.

The backlog at any instant inside a busy window equals released work
minus provided service.  With request tuples ``(t, w)`` — work *w*
released by a single path by offset *t* — the exact bound is

    B* = max over tuples (t, w) of  [ w - beta(t) ]^+

because backlog peaks immediately after a release (it only drains in
between), and the busy-window bound truncates the exploration exactly as
for delays.  The arrival-curve counterpart is the vertical deviation
``vdev(rbf, beta)`` which — unlike the delay case — coincides with the
structural bound for a single task (sup over the staircase's jump points
is the same maximisation); the coarser abstractions (hull, bucket,
sporadic) remain strictly pessimistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro._numeric import Q, NumLike
from repro.core.busy_window import busy_window_bound
from repro.drt.model import DRTTask
from repro.drt.request import RequestTuple, request_frontier
from repro.minplus.curve import Curve

__all__ = ["BacklogResult", "structural_backlog"]


@dataclass(frozen=True)
class BacklogResult:
    """Result of a structural backlog analysis.

    Attributes:
        backlog: Worst-case buffered work.
        busy_window: Busy window bound used to truncate exploration.
        critical_tuple: The request tuple realising the bound (None when
            the service absorbs every release instantly).
    """

    backlog: Fraction
    busy_window: Fraction
    critical_tuple: Optional[RequestTuple]


def structural_backlog(
    task: DRTTask,
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    reuse: bool = True,
) -> BacklogResult:
    """Worst-case backlog of structural workload *task* on service *beta*.

    Args:
        task: The structural workload.
        beta: Lower service curve of the resource.
        reuse: Serve the busy window and the frontier from the shared
            per-``(task, beta)``
            :class:`~repro.core.context.AnalysisContext` (default).
            ``False`` recomputes both from scratch — the benchmarks'
            reference; same result.

    Raises:
        UnboundedBusyWindowError: if the workload saturates the service.
    """
    if reuse and initial_horizon is None:
        from repro.core.context import AnalysisContext

        return AnalysisContext.of(task, beta).backlog_result()
    bw = busy_window_bound(
        task, beta, initial_horizon=initial_horizon, reuse=reuse
    )
    if reuse:
        tuples = request_frontier(task, bw.length)
    else:
        from repro.drt.request import FrontierExplorer

        tuples = FrontierExplorer(task).tuples(bw.length)
    best = Q(0)
    critical: Optional[RequestTuple] = None
    for tup in tuples:
        b = tup.work - beta.at(tup.time)
        if b > best:
            best = b
            critical = tup
    return BacklogResult(
        backlog=best, busy_window=bw.length, critical_tuple=critical
    )
