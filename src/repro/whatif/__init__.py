"""Incremental what-if analysis: warm re-analysis under model edits.

The sweep vocabulary (:mod:`repro.whatif.edits`), the incremental
engine (:mod:`repro.whatif.engine`), and the structural diffing it
builds on (:mod:`repro.drt.digest`).  See ``docs/API.md``
("Incremental what-if analysis") for the workflow and the wire forms.
"""

from repro.drt.digest import StructuralDiff, structural_diff
from repro.whatif.edits import (
    AddEdge,
    Edit,
    RemoveEdge,
    ScaleWcet,
    SetDeadline,
    SetSeparation,
    SetWcet,
    TightenBeta,
    apply_edit,
    edit_from_dict,
    edit_to_dict,
)
from repro.whatif.engine import WhatIfResult, WhatIfSession, whatif_sweep

__all__ = [
    "StructuralDiff",
    "structural_diff",
    "Edit",
    "ScaleWcet",
    "SetWcet",
    "SetDeadline",
    "SetSeparation",
    "AddEdge",
    "RemoveEdge",
    "TightenBeta",
    "apply_edit",
    "edit_to_dict",
    "edit_from_dict",
    "WhatIfResult",
    "WhatIfSession",
    "whatif_sweep",
]
