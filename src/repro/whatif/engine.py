"""Incremental what-if re-analysis of edited models.

Design-space sweeps ask thousands of small questions about one base
model: *what if this edge's separation tightened, this WCET grew 10%,
the service latency doubled?*  Re-analyzing each variant from scratch
repeats almost all of the exploration — the edit's blast radius
(:func:`~repro.drt.digest.structural_diff`) is typically a small cone
of the graph.  :class:`WhatIfSession` analyses each edit against the
base task's *warm* shared state:

* β-only edits reuse the base task object (and therefore its shared
  :func:`~repro.drt.request.frontier_explorer` and every memo in its
  analysis cache) directly — only the service-side work repeats.
* Structural edits fork the base explorer against the diff
  (:meth:`~repro.drt.request.FrontierExplorer.fork`): frontiers outside
  the affected cone carry over verbatim and only the cone re-expands.
* Per-vertex delay bounds are additionally cached in the persistent
  result cache under :func:`~repro.drt.digest.backward_cone_digest`
  keys, so *any* process re-analyzing a variant reuses every vertex
  whose backward-reachable subgraph (and busy window) the edit left
  alone.

Every bound an edited analysis produces is bit-identical (exact
:class:`~fractions.Fraction` equality) to a from-scratch analysis of
the edited model — enforced by the hypothesis property suite.  What
*does* differ is exploration statistics (a forked explorer only counts
the incremental work), which is why what-if contexts never persist
whole-analysis results (``persist=False``) — they would carry
misleading stats to cold readers — while per-vertex *bounds* (pure
values, no stats) are cached freely.

:func:`whatif_sweep` batches many edits over warm sessions on the
parallel plane; the service's ``POST /v1/whatif`` endpoint and the
``repro whatif`` CLI subcommand are thin wrappers around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro import perf
from repro.core.context import AnalysisContext
from repro.core.delay import critical_path_of
from repro.core.facade import TaskAnalysisSummary
from repro.drt.digest import (
    backward_cone_digest,
    cycles_untouched,
    guard_cache,
    structural_diff,
)
from repro.drt.model import DRTTask
from repro.drt.request import frontier_explorer
from repro.errors import (
    BudgetExhaustedError,
    ReproError,
    UnboundedBusyWindowError,
    ValidationError,
)
from repro.minplus.curve import Curve
from repro.parallel import cache as result_cache
from repro.parallel.plane import JobsLike, parallel_map, resolve_jobs
from repro.whatif.edits import Edit, apply_edit, edit_to_dict

__all__ = ["WhatIfResult", "WhatIfSession", "whatif_sweep"]


def _error_code(exc: BaseException) -> str:
    """The wire error code of one failed edit (mirrors the service's)."""
    if isinstance(exc, ValidationError):
        return "validation"
    if isinstance(exc, UnboundedBusyWindowError):
        return "unbounded"
    if isinstance(exc, BudgetExhaustedError):
        return "budget_exhausted"
    return "analysis_error"


@dataclass(frozen=True)
class WhatIfResult:
    """Outcome of one edit's re-analysis.

    Attributes:
        edit: The edit's wire form (:func:`~repro.whatif.edits.edit_to_dict`).
        ok: True iff the edited model analysed successfully.
        summary: The edited model's headline bounds (None on failure).
            Bit-identical to a from-scratch analysis of the edited
            model; chunking and transport never change it.
        error: Failure message (None on success).  A failing *edit* —
            removing an edge isolates a vertex, scaling a WCET overloads
            the service — is a first-class answer, not an exception: the
            rest of the sweep proceeds.
        error_code: Typed failure class (``validation``, ``unbounded``,
            ``budget_exhausted``, ``analysis_error``), or None.
        cone_size: Vertices inside the edit's affected cone (0 for
            β-only edits).
        carried_vertices: Vertices whose frontiers carried over from the
            warm base exploration.
        total_vertices: Vertex count of the edited model.
    """

    edit: Dict[str, Any]
    ok: bool
    summary: Optional[TaskAnalysisSummary] = None
    error: Optional[str] = None
    error_code: Optional[str] = None
    cone_size: int = 0
    carried_vertices: int = 0
    total_vertices: int = 0


class WhatIfSession:
    """Warm incremental re-analysis of edits against one base model.

    Construction analyses the base pair once (delay, per-job, backlog),
    which grows the base task's shared explorer to its busy window;
    every subsequent :meth:`analyze` reuses that exploration through
    explorer forking and the per-vertex result cache.

    Args:
        task: The base structural workload.
        beta: The base lower service curve.
    """

    def __init__(self, task: DRTTask, beta: Curve) -> None:
        self.task = task
        self.beta = beta
        ctx = AnalysisContext.of(task, beta)
        ctx.delay_result()
        ctx.per_job()
        ctx.backlog_result()
        self._base_ctx = ctx
        # Seed edited fixpoints with the base exactness horizon: the
        # converged busy-window *length* is seed-independent (the
        # crossing point lies in the staircase's exact region), so this
        # only saves doubling rounds — usually all but one.
        self._seed_horizon = ctx.busy_window().horizon

    def analyze(self, edit: Edit) -> WhatIfResult:
        """Re-analyse the base pair under one edit (never raises
        :class:`~repro.errors.ReproError` — failures come back typed)."""
        wire = edit_to_dict(edit)
        perf.record("whatif.edits")
        try:
            new_task, new_beta = apply_edit(self.task, self.beta, edit)
            if new_task is self.task:
                # β-only edit: the base task's entire memo cache (shared
                # explorer, busy windows, contexts) applies as-is.
                cone_size = 0
                carried = len(new_task.job_names)
                ctx = AnalysisContext.of(new_task, new_beta)
            else:
                diff = structural_diff(self.task, new_task)
                cone_size = len(diff.affected_cone)
                carried = len(diff.carried_vertices)
                forked = frontier_explorer(self.task).fork(new_task, diff)
                cache = guard_cache(new_task)
                cache["frontier_explorer"] = forked
                if cycles_untouched(diff, self.task, new_task):
                    # Identical cycle set: the base's (warm) cycle-ratio
                    # memo is exactly the edited task's value, so the
                    # per-edit cycle search is skipped entirely.
                    base_memo = guard_cache(self.task).get("max_cycle_ratio")
                    if base_memo is not None:
                        cache["max_cycle_ratio"] = base_memo
                        perf.record("whatif.cycle_ratio_carried")
                ctx = AnalysisContext.of(
                    new_task,
                    new_beta,
                    persist=False,
                    initial_horizon=self._seed_horizon,
                )
            summary = self._summarize(new_task, new_beta, ctx)
        except ReproError as exc:
            return WhatIfResult(
                edit=wire,
                ok=False,
                error=str(exc),
                error_code=_error_code(exc),
            )
        return WhatIfResult(
            edit=wire,
            ok=True,
            summary=summary,
            cone_size=cone_size,
            carried_vertices=carried,
            total_vertices=len(new_task.job_names),
        )

    # -- internals -------------------------------------------------------

    def _summarize(
        self, task: DRTTask, beta: Curve, ctx: AnalysisContext
    ) -> TaskAnalysisSummary:
        """The edited model's headline bounds from a warm context."""
        dres = ctx.delay_result()
        per = self._per_job(task, beta, ctx)
        back = ctx.backlog_result()
        witness = critical_path_of(task, dres)
        return TaskAnalysisSummary(
            task=task.name,
            delay=dres.delay,
            backlog=back.backlog,
            busy_window=ctx.busy_window().length,
            per_job=per,
            meets_deadlines=all(
                d <= task.deadline(v) for v, d in per.items()
            ),
            witness_vertices=(
                tuple(witness.vertices) if witness is not None else None
            ),
        )

    def _per_job(self, task: DRTTask, beta: Curve, ctx: AnalysisContext):
        """Per-job delays through the edit-aware per-vertex cache.

        A vertex's delay bound is a pure function of its backward-
        reachable subgraph, the service curve, and the busy-window
        truncation ``L``, so entries keyed by
        :func:`~repro.drt.digest.backward_cone_digest` survive any edit
        outside that backward cone — across processes.  ``L`` in the key
        keeps the truncation honest: an edit that moves the busy window
        addresses different entries.
        """
        if not result_cache.is_enabled():
            return ctx.per_job()
        length = str(ctx.busy_window().length)
        keys = {
            v: result_cache.analysis_key(
                "whatif.vertex_delay",
                (backward_cone_digest(task, v), beta.digest(), length),
            )
            for v in task.job_names
        }
        hits = {v: result_cache.get(key) for v, key in keys.items()}
        if all(hit is not None for hit in hits.values()):
            perf.record("whatif.vertex_hits", len(hits))
            return dict(hits)
        per = ctx.per_job()
        for v, key in keys.items():
            if hits[v] is None:
                result_cache.put(key, per[v])
        return per


def _sweep_chunk(item) -> List[WhatIfResult]:
    """One worker's share of a sweep (module-level: ships to workers)."""
    task, beta, edits = item
    session = WhatIfSession(task, beta)
    return [session.analyze(edit) for edit in edits]


def whatif_sweep(
    task: DRTTask,
    beta: Curve,
    edits: Sequence[Edit],
    jobs: JobsLike = None,
) -> List[WhatIfResult]:
    """Re-analyse *task* on *beta* under each edit, sharing warm state.

    Args:
        task: The base structural workload.
        beta: The base lower service curve.
        edits: The perturbations, each applied to the *base* pair
            independently (edits do not compose across the sweep).
        jobs: Fan contiguous chunks of the sweep out over worker
            processes (``REPRO_JOBS``/serial by default); each worker
            warms its own session once.  Results come back in input
            order and are independent of the chunking: summaries hold
            only bounds and witnesses, which are canonical.

    Returns:
        One :class:`WhatIfResult` per edit, in input order.
    """
    edits = list(edits)
    if not edits:
        return []
    n = resolve_jobs(jobs, n_items=len(edits))
    if n <= 1:
        return _sweep_chunk((task, beta, edits))
    size = (len(edits) + n - 1) // n
    chunks = [
        (task, beta, edits[i : i + size])
        for i in range(0, len(edits), size)
    ]
    out: List[WhatIfResult] = []
    for results in parallel_map(_sweep_chunk, chunks, jobs=jobs):
        out.extend(results)
    return out
