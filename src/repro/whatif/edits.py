"""Model edits: the perturbation vocabulary of the what-if engine.

An :data:`Edit` is a small frozen value describing one perturbation of
a ``(task, beta)`` pair — scale or set a WCET, move a deadline, retime/
add/remove an edge, or tighten the service curve.  :func:`apply_edit`
produces the edited pair as *new objects* (tasks stay immutable, so
every memo on the base task remains valid), preserving the base task's
job and edge insertion order: ordering steers exploration tie-breaking,
so an in-place retiming must not silently reorder the definition.

Every edit has a JSON wire form (``{"op": ..., ...}``, rationals as
``"p/q"`` strings) used by the ``repro whatif`` CLI and the
``POST /v1/whatif`` service endpoint; :func:`edit_from_dict` /
:func:`edit_to_dict` convert losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Optional, Tuple, Union

from repro._numeric import as_q
from repro.drt.model import DRTTask, Edge, Job
from repro.errors import ModelError, SerializationError
from repro.minplus.curve import Curve

__all__ = [
    "Edit",
    "ScaleWcet",
    "SetWcet",
    "SetDeadline",
    "SetSeparation",
    "AddEdge",
    "RemoveEdge",
    "TightenBeta",
    "apply_edit",
    "edit_to_dict",
    "edit_from_dict",
]


@dataclass(frozen=True)
class ScaleWcet:
    """Multiply every WCET (or one job's) by a positive factor."""

    factor: Fraction
    job: Optional[str] = None


@dataclass(frozen=True)
class SetWcet:
    """Set one job's WCET."""

    job: str
    wcet: Fraction


@dataclass(frozen=True)
class SetDeadline:
    """Set one job's relative deadline."""

    job: str
    deadline: Fraction


@dataclass(frozen=True)
class SetSeparation:
    """Retime one existing edge's minimum inter-release separation."""

    src: str
    dst: str
    separation: Fraction


@dataclass(frozen=True)
class AddEdge:
    """Add a new edge (appended after the existing edges)."""

    src: str
    dst: str
    separation: Fraction


@dataclass(frozen=True)
class RemoveEdge:
    """Remove one existing edge."""

    src: str
    dst: str


@dataclass(frozen=True)
class TightenBeta:
    """Replace the service curve with the rate-latency curve
    ``beta_{R,T}(t) = R * max(0, t - T)``."""

    rate: Fraction
    latency: Fraction = Fraction(0)


Edit = Union[
    ScaleWcet,
    SetWcet,
    SetDeadline,
    SetSeparation,
    AddEdge,
    RemoveEdge,
    TightenBeta,
]


def _rebuild(task: DRTTask, jobs, edges) -> DRTTask:
    """A sibling task with the same name (order as given)."""
    return DRTTask(task.name, jobs, edges)


def _require_job(task: DRTTask, name: str) -> None:
    if name not in task.jobs:
        raise ModelError(f"edit refers to unknown job {name!r}")


def apply_edit(
    task: DRTTask, beta: Curve, edit: Edit
) -> Tuple[DRTTask, Curve]:
    """The edited ``(task, beta)`` pair (new objects; base untouched).

    Task edits preserve the base definition's job and edge insertion
    order — ``SetSeparation`` retimes in place, ``AddEdge`` appends,
    ``RemoveEdge`` deletes in place — so the edited task's exploration
    tie-breaking matches a from-scratch definition of the same model.
    β-only edits return the base task object itself (``new_task is
    task``), which the engine uses to skip structural diffing entirely.

    Raises:
        ModelError: when the edit refers to a missing job/edge, would
            duplicate an edge, or produces a non-positive parameter.
    """
    if isinstance(edit, TightenBeta):
        from repro.curves.service import rate_latency_service

        if edit.rate <= 0:
            raise ModelError(f"beta rate must be positive, got {edit.rate}")
        if edit.latency < 0:
            raise ModelError(
                f"beta latency must be >= 0, got {edit.latency}"
            )
        return task, rate_latency_service(edit.rate, edit.latency)

    if isinstance(edit, ScaleWcet):
        if edit.factor <= 0:
            raise ModelError(
                f"WCET scale factor must be positive, got {edit.factor}"
            )
        if edit.job is not None:
            _require_job(task, edit.job)
        jobs = [
            Job(j.name, j.wcet * edit.factor, j.deadline)
            if edit.job is None or j.name == edit.job
            else j
            for j in task.jobs.values()
        ]
        return _rebuild(task, jobs, task.edges), beta

    if isinstance(edit, SetWcet):
        _require_job(task, edit.job)
        jobs = [
            Job(j.name, edit.wcet, j.deadline) if j.name == edit.job else j
            for j in task.jobs.values()
        ]
        return _rebuild(task, jobs, task.edges), beta

    if isinstance(edit, SetDeadline):
        _require_job(task, edit.job)
        jobs = [
            Job(j.name, j.wcet, edit.deadline) if j.name == edit.job else j
            for j in task.jobs.values()
        ]
        return _rebuild(task, jobs, task.edges), beta

    if isinstance(edit, SetSeparation):
        key = (edit.src, edit.dst)
        if not any((e.src, e.dst) == key for e in task.edges):
            raise ModelError(f"edit refers to unknown edge {key!r}")
        edges = [
            Edge(e.src, e.dst, edit.separation)
            if (e.src, e.dst) == key
            else e
            for e in task.edges
        ]
        return _rebuild(task, task.jobs.values(), edges), beta

    if isinstance(edit, AddEdge):
        _require_job(task, edit.src)
        _require_job(task, edit.dst)
        key = (edit.src, edit.dst)
        if any((e.src, e.dst) == key for e in task.edges):
            raise ModelError(f"edge {key!r} already exists")
        edges = list(task.edges)
        edges.append(Edge(edit.src, edit.dst, edit.separation))
        return _rebuild(task, task.jobs.values(), edges), beta

    if isinstance(edit, RemoveEdge):
        key = (edit.src, edit.dst)
        if not any((e.src, e.dst) == key for e in task.edges):
            raise ModelError(f"edit refers to unknown edge {key!r}")
        edges = [e for e in task.edges if (e.src, e.dst) != key]
        return _rebuild(task, task.jobs.values(), edges), beta

    raise ModelError(f"unknown edit {edit!r}")


# ----------------------------------------------------------------------
# Wire forms
# ----------------------------------------------------------------------

_OPS = {
    "scale_wcet": ScaleWcet,
    "set_wcet": SetWcet,
    "set_deadline": SetDeadline,
    "set_separation": SetSeparation,
    "add_edge": AddEdge,
    "remove_edge": RemoveEdge,
    "tighten_beta": TightenBeta,
}
_OP_OF = {cls: op for op, cls in _OPS.items()}

#: Edit fields carrying rationals (everything else is a string or None).
_RATIONAL_FIELDS = frozenset(
    {"factor", "wcet", "deadline", "separation", "rate", "latency"}
)


def edit_to_dict(edit: Edit) -> Dict[str, Any]:
    """The JSON wire form of one edit (rationals as ``"p/q"`` strings)."""
    op = _OP_OF.get(type(edit))
    if op is None:
        raise SerializationError(f"unknown edit {edit!r}")
    out: Dict[str, Any] = {"op": op}
    for name in edit.__dataclass_fields__:
        value = getattr(edit, name)
        if name in _RATIONAL_FIELDS and value is not None:
            value = str(value)
        out[name] = value
    return out


def edit_from_dict(data: Any) -> Edit:
    """Inverse of :func:`edit_to_dict`.

    Raises:
        SerializationError: on unknown ops, missing/unknown fields, or
            malformed rationals.
    """
    if not isinstance(data, dict):
        raise SerializationError("edit must be a JSON object")
    op = data.get("op")
    cls = _OPS.get(op)
    if cls is None:
        raise SerializationError(
            f"unknown edit op {op!r}; expected one of {sorted(_OPS)}"
        )
    fields = cls.__dataclass_fields__
    unknown = sorted(set(data) - set(fields) - {"op"})
    if unknown:
        raise SerializationError(
            f"unknown fields {unknown} for edit op {op!r}"
        )
    kwargs: Dict[str, Any] = {}
    for name, spec in fields.items():
        if name not in data or data[name] is None:
            continue  # dataclass defaults cover optional fields
        value = data[name]
        if name in _RATIONAL_FIELDS:
            try:
                value = as_q(Fraction(str(value)))
            except (ValueError, ZeroDivisionError) as exc:
                raise SerializationError(
                    f"invalid rational {value!r} for edit field {name!r}"
                ) from exc
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise SerializationError(
            f"incomplete edit for op {op!r}: {exc}"
        ) from exc
