"""Deviations, pseudo-inverses and crossings of curves.

The horizontal deviation between an arrival/request curve and a service
curve is the classical worst-case delay bound of real-time calculus; the
vertical deviation bounds the backlog; the first crossing of a request
bound function under a service curve bounds the busy window.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro import perf
from repro._numeric import INF, Q, is_inf
from repro.errors import CurveError
from repro.minplus.curve import Curve
from repro.resilience.budget import checkpoint

__all__ = [
    "lower_pseudo_inverse",
    "lower_pseudo_inverse_batch",
    "upper_pseudo_inverse",
    "upper_pseudo_inverse_batch",
    "horizontal_deviation",
    "vertical_deviation",
    "first_crossing",
]

MaybeInf = Union[Q, type(INF)]


def lower_pseudo_inverse(f: Curve, w) -> MaybeInf:
    """``inf { t >= 0 : f(t) >= w }`` for a nondecreasing curve *f*.

    Returns :data:`~repro._numeric.INF` when *f* never reaches *w*.
    With the right-continuous convention the infimum, when finite, is
    attained: ``f(result) >= w``.
    """
    from repro._numeric import as_q

    wq = as_q(w)
    perf.record("pinv.evaluations")
    starts = f.breakpoints()
    for i, seg in enumerate(f.segments):
        if seg.value >= wq:
            return seg.start
        end = starts[i + 1] if i + 1 < len(starts) else None
        if seg.slope > 0:
            t = seg.start + (wq - seg.value) / seg.slope
            if end is None or t < end:
                return t
    return INF


def lower_pseudo_inverse_batch(f: Curve, works: Sequence) -> List[MaybeInf]:
    """:func:`lower_pseudo_inverse` of *f* at every value in *works*.

    One sweep over the segments of *f* instead of one per query —
    ``O(k log k + n)`` for ``k`` queries on ``n`` segments, against
    ``O(k * n)`` for the scalar loop.  The delay analyses call this with
    every request tuple's work at once.

    The sweep is bit-identical to the scalar function: a segment answers
    a query ``w`` either at its start (``w <= value``, the plateau/jump
    case) or inside it (``slope > 0`` and ``w`` below the segment-end
    value).  Both conditions are downward closed in ``w``, so walking the
    queries in ascending order lets each segment consume exactly the
    prefix of still-unanswered queries it is the first to satisfy — the
    same segment the scalar scan would stop at, even for curves that are
    not nondecreasing.

    Args:
        f: The curve to invert (typically a lower service curve).
        works: Query values, in any order.

    Returns:
        Results in the order of *works*; :data:`INF` where *f* never
        reaches the value.
    """
    from repro._numeric import as_q

    ws = [as_q(w) for w in works]
    perf.record("pinv.evaluations", len(ws))
    perf.record("pinv.batches")
    # Amortised budget charge for the whole sweep (queries + segments).
    checkpoint(1 + (len(ws) + len(f.segments)) // 64)
    order = sorted(range(len(ws)), key=lambda i: ws[i])
    out: List[MaybeInf] = [INF] * len(ws)
    starts = f.breakpoints()
    j, n = 0, len(ws)
    for i, seg in enumerate(f.segments):
        if j >= n:
            break
        while j < n and ws[order[j]] <= seg.value:
            out[order[j]] = seg.start
            j += 1
        if seg.slope > 0:
            end = starts[i + 1] if i + 1 < len(starts) else None
            v_end = seg.value_at(end) if end is not None else None
            while j < n and (v_end is None or ws[order[j]] < v_end):
                wq = ws[order[j]]
                out[order[j]] = seg.start + (wq - seg.value) / seg.slope
                j += 1
    return out


def upper_pseudo_inverse_batch(f: Curve, works: Sequence) -> List[MaybeInf]:
    """:func:`upper_pseudo_inverse` of *f* at every value in *works*.

    Same single-sweep construction as :func:`lower_pseudo_inverse_batch`
    with the strict comparisons of the upper pseudo-inverse; bit-identical
    to the scalar function on every query.
    """
    from repro._numeric import as_q

    ws = [as_q(w) for w in works]
    checkpoint(1 + (len(ws) + len(f.segments)) // 64)
    order = sorted(range(len(ws)), key=lambda i: ws[i])
    out: List[MaybeInf] = [INF] * len(ws)
    starts = f.breakpoints()
    j, n = 0, len(ws)
    for i, seg in enumerate(f.segments):
        if j >= n:
            break
        while j < n and ws[order[j]] < seg.value:
            out[order[j]] = seg.start
            j += 1
        if seg.slope > 0:
            end = starts[i + 1] if i + 1 < len(starts) else None
            v_end = seg.value_at(end) if end is not None else None
            while j < n and (v_end is None or ws[order[j]] < v_end):
                wq = ws[order[j]]
                t = seg.start + (wq - seg.value) / seg.slope
                out[order[j]] = seg.start if t < seg.start else t
                j += 1
    return out


def upper_pseudo_inverse(f: Curve, w) -> MaybeInf:
    """``inf { t >= 0 : f(t) > w }`` for a nondecreasing curve *f*.

    Strictly-greater variant of :func:`lower_pseudo_inverse`; the two
    differ exactly where *f* has a plateau at value *w*.  Returns
    :data:`INF` when *f* never exceeds *w*.
    """
    from repro._numeric import as_q

    wq = as_q(w)
    starts = f.breakpoints()
    for i, seg in enumerate(f.segments):
        if seg.value > wq:
            return seg.start
        end = starts[i + 1] if i + 1 < len(starts) else None
        if seg.slope > 0:
            v_end = seg.value_at(end) if end is not None else None
            if v_end is None or v_end > wq:
                # Crosses (or starts at) w inside this segment; f exceeds
                # w immediately after the crossing point.
                t = seg.start + (wq - seg.value) / seg.slope
                if t < seg.start:
                    return seg.start
                if end is None or t < end:
                    return t
    return INF


def first_crossing(f: Curve, g: Curve, start=0) -> Optional[Q]:
    """Smallest ``t >= start`` with ``f(t) <= g(t)``, or None if never.

    Used for busy-window bounds: the busy window of workload *f* on
    service *g* ends at the first time the accumulated service catches up
    with the accumulated requests.
    """
    from repro._numeric import as_q

    t0 = as_q(start)
    diff = f - g
    starts = diff.breakpoints()
    for i, seg in enumerate(diff.segments):
        end = starts[i + 1] if i + 1 < len(starts) else None
        lo = max(seg.start, t0)
        if end is not None and lo >= end:
            continue
        if seg.value_at(lo) <= 0:
            return lo
        if seg.slope < 0:
            x = seg.start + (0 - seg.value) / seg.slope
            if x >= lo and (end is None or x < end):
                return x
    return None


def vertical_deviation(f: Curve, g: Curve) -> MaybeInf:
    """``sup_{t>=0} (f(t) - g(t))`` — the backlog bound.

    Returns :data:`INF` when the difference grows without bound.
    """
    diff = f - g
    if diff.tail_rate > 0:
        return INF
    horizon = diff.last_breakpoint
    return diff.sup_on(0, horizon)


def horizontal_deviation(f: Curve, g: Curve, backend: Optional[str] = None) -> MaybeInf:
    """``sup_t inf { d >= 0 : f(t) <= g(t + d) }`` — the delay bound.

    *f* plays the role of an upper request/arrival curve and *g* of a
    lower service curve; both must be nondecreasing.  Returns
    :data:`INF` when *f* outgrows *g* (long-run overload).

    The supremum of ``h(t) = [g^{-1}(f(t)) - t]^+`` is taken over the
    finitely many candidate times where ``h`` can change slope: the
    breakpoints of *f* and the pull-backs of *g*'s breakpoint values
    through each affine piece of *f*.

    Args:
        f: Upper request/arrival curve.
        g: Lower service curve.
        backend: Kernel backend override (see :mod:`repro.minplus.backend`).
            The ``"hybrid"`` backend enumerates the same pull-back pairs
            through float64 window screens and memoizes on curve
            fingerprints; its result is identical to ``"exact"``.
            ``"auto"`` (the default) picks between the two per call from
            the calibrated cost model — tiny-curve deviations are where
            the hybrid tier's fixed lowering cost shows, so the
            conservative prior routes them exact.
    """
    from repro.minplus import backend as backend_mod

    if not f.is_nondecreasing() or not g.is_nondecreasing():
        raise CurveError("horizontal_deviation requires nondecreasing curves")
    if f.tail_rate > g.tail_rate:
        return INF
    mode = backend_mod.op_backend(
        "hdev", max(len(f.segments), len(g.segments)), backend
    )
    if mode == "hybrid":
        from repro.minplus import kernels

        key = ("hdev", f.interned(), g.interned())
        hit = kernels.op_cache_get(key)
        if hit is not None:
            return hit[0]
        result = _horizontal_deviation_hybrid(f, g)
        if result is not None:
            kernels.op_cache_put(key, (result,))
            return result
    # Values at which g's pseudo-inverse changes slope: values of g at and
    # just before each of its breakpoints.
    g_values = set()
    for t in g.breakpoints():
        g_values.add(g.at(t))
        if t > 0:
            g_values.add(g.left_limit(t))
    # Amortised budget charge covering the pull-back double loop below.
    checkpoint(1 + (len(f.segments) * max(len(g_values), 1)) // 64)
    candidates: List[Q] = list(f.breakpoints())
    # Supremum candidates approached from the right: where f crosses a
    # plateau value of g with positive slope, d(t) tends to
    # upper_pseudo_inverse(g, v) - t as t decreases to the crossing.
    limit_candidates: List[Q] = []
    starts = f.breakpoints()
    for i, seg in enumerate(f.segments):
        if seg.slope <= 0:
            continue
        end = starts[i + 1] if i + 1 < len(starts) else None
        v_lo = seg.value
        v_hi = seg.value_at(end) if end is not None else None
        for w in g_values:
            if w < v_lo:
                continue
            if v_hi is not None and w > v_hi:
                continue
            t_w = seg.start + (w - v_lo) / seg.slope
            candidates.append(t_w)
            if v_hi is None or w < v_hi:
                # f increases strictly through w at t_w.
                inv_up = upper_pseudo_inverse(g, w)
                if is_inf(inv_up):
                    return INF
                limit_candidates.append(inv_up - t_w)
    return _hdev_from_candidates(f, g, candidates, limit_candidates)


def _hdev_from_candidates(
    f: Curve, g: Curve, candidates: List[Q], limit_candidates: List[Q]
) -> MaybeInf:
    """Shared supremum sweep over the assembled candidate times."""
    best: MaybeInf = Q(0)
    # One batched sweep over g's segments answers every candidate value
    # (identical results to the scalar per-candidate loop).
    times: List[Q] = []
    values: List[Q] = []
    for t in sorted(set(candidates)):
        for value in _values_around(f, t):
            times.append(t)
            values.append(value)
    for t, inv in zip(times, lower_pseudo_inverse_batch(g, values)):
        if is_inf(inv):
            return INF
        d = inv - t
        if d > best:
            best = d
    for d in limit_candidates:
        if d > best:
            best = d
    return best


def _horizontal_deviation_hybrid(f: Curve, g: Curve) -> Optional[MaybeInf]:
    """Kernel-screened horizontal deviation (None -> run the exact path).

    Builds the *same* candidate set as the exact algorithm, but locates
    the pull-back pairs ``(f segment, g value)`` through vectorized
    ``searchsorted`` windows on the lowered arrays instead of the exact
    ``O(n_f * n_g)`` double loop: the float window is a certified
    superset of the in-range pairs (one-ulp outward bounds on both
    sides), and each windowed pair is confirmed with the exact rational
    comparisons before use.  Downstream sweeps reuse the exact batched
    pseudo-inverses, so the returned value is identical to the exact
    backend's.
    """
    from repro.minplus import kernels

    if not kernels.AVAILABLE:
        return None
    np = kernels.np
    fl = kernels.lowered(f)
    # Exact g values (the pseudo-inverse's slope-change levels), sorted so
    # their float bounds are monotone and searchsorted applies.
    g_values_set = set()
    for t in g.breakpoints():
        g_values_set.add(g.at(t))
        if t > 0:
            g_values_set.add(g.left_limit(t))
    g_values = sorted(g_values_set)
    gv_lo, gv_hi = kernels.q_bounds(g_values)
    m = len(g_values)
    # Window per f segment: g values j with certainly(w < v_lo) excluded
    # on the left and certainly(w > v_hi) on the right.
    win_lo = np.searchsorted(gv_hi, fl.V_lo, side="left")
    win_hi = np.searchsorted(gv_lo, fl.VE_hi, side="right")
    win_hi[-1] = m  # last segment has no end value: every w >= v_lo pairs
    perf.record(
        "kernel.screen_hits",
        int(fl.n * m - np.sum(np.maximum(win_hi - win_lo, 0))),
    )
    candidates: List[Q] = list(f.breakpoints())
    limit_candidates: List[Q] = []
    strict_ws: List[Q] = []
    strict_ts: List[Q] = []
    starts = f.breakpoints()
    for i, seg in enumerate(f.segments):
        if seg.slope <= 0:
            continue
        end = starts[i + 1] if i + 1 < len(starts) else None
        v_lo = seg.value
        v_hi = seg.value_at(end) if end is not None else None
        for j in range(int(win_lo[i]), int(min(win_hi[i], m))):
            w = g_values[j]
            if w < v_lo or (v_hi is not None and w > v_hi):
                perf.record("kernel.exact_fallbacks")
                continue
            t_w = seg.start + (w - v_lo) / seg.slope
            candidates.append(t_w)
            if v_hi is None or w < v_hi:
                strict_ws.append(w)
                strict_ts.append(t_w)
    for t_w, inv_up in zip(
        strict_ts, upper_pseudo_inverse_batch(g, strict_ws)
    ):
        if is_inf(inv_up):
            return INF
        limit_candidates.append(inv_up - t_w)
    return _hdev_from_candidates(f, g, candidates, limit_candidates)


def _values_around(f: Curve, t: Q) -> List[Q]:
    """Value and (for t > 0) left limit of *f* at *t*."""
    values = [f.at(t)]
    if t > 0:
        values.append(f.left_limit(t))
    return values
