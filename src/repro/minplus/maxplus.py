"""Max-plus counterparts and subadditivity utilities.

Max-plus convolution is the dual of min-plus convolution (sup instead of
inf over decompositions); it composes *lower* arrival curves and appears
in the lower-bound half of full real-time calculus.  The subadditive
closure tightens any upper arrival curve to the best curve implying the
same constraints (``alpha* <= alpha`` pointwise, still sound).
"""

from __future__ import annotations

from typing import List

from repro._numeric import Q
from repro.errors import CurveError
from repro.minplus.convolution import (
    _closed_segments,
    _correct_breakpoints,
    _verify_point_exactness,
)
from repro.minplus.curve import Curve
from repro.minplus.envelope import Piece, envelope, envelope_to_segments
from repro.minplus.segment import Segment

__all__ = ["max_plus_conv", "is_subadditive", "subadditive_closure"]


def max_plus_conv(f: Curve, g: Curve, on_dip: str = "fill") -> Curve:
    """Max-plus convolution ``sup_{0<=s<=t} f(s) + g(t-s)``.

    Ultimately affine beyond ``T_f + T_g`` with rate ``max(r_f, r_g)``;
    the dual of :func:`repro.minplus.convolution.min_plus_conv`.
    """
    from repro.minplus.convolution import _ultimate_horizon

    h0 = _ultimate_horizon(f, g, lower=False)
    tail_rate = max(f.tail_rate, g.tail_rate)
    if h0 == 0:
        return Curve([Segment(Q(0), f.at(0) + g.at(0), tail_rate)])
    pieces: List[Piece] = []
    for a in _closed_segments(f, h0):
        for b in _closed_segments(g, h0):
            pieces.extend(_pair(a, b, h0))
    env = envelope(pieces, lower=False)
    segs = envelope_to_segments(env, h0, on_dip="fill")
    point_value = lambda t: max_conv_point_value(f, g, t)
    # Joint value from the exact point evaluation (see min_plus_conv).
    segs = [s for s in segs if s.start < h0]
    segs.append(Segment(h0, point_value(h0), tail_rate))
    segs = _correct_breakpoints(segs, point_value, lower=False, on_dip=on_dip)
    result = Curve(segs)
    if on_dip == "raise":
        _verify_point_exactness(result, pieces, point_value, h0, lower=False)
    return result


def max_conv_point_value(f: Curve, g: Curve, t: Q) -> Q:
    """Exact ``sup { f(s) + g(t-s) : 0 <= s <= t }`` at one point.

    Mirror image of :func:`repro.minplus.convolution.conv_point_value`:
    along ``s + u = t`` a left limit on one side pairs with the
    right-continuous value on the other.
    """
    candidates: List[Q] = []
    for s in f.breakpoints():
        if 0 <= s <= t:
            candidates.append(f.at(s) + g.at(t - s))
            if s > 0:
                candidates.append(f.left_limit(s) + g.at(t - s))
    for u in g.breakpoints():
        if 0 <= u <= t:
            candidates.append(f.at(t - u) + g.at(u))
            if u > 0:
                candidates.append(f.at(t - u) + g.left_limit(u))
    return max(candidates)


def _pair(a: Piece, b: Piece, cap: Q) -> List[Piece]:
    """Upper pieces of one segment pair: traverse the *steeper* slope
    first (mirror image of the min-plus Minkowski sum)."""
    lo = a.lo + b.lo
    if lo > cap:
        return []
    first, second = (a, b) if a.slope >= b.slope else (b, a)
    v0 = a.value + b.value
    mid = lo + (first.hi - first.lo)
    hi = mid + (second.hi - second.lo)
    out: List[Piece] = []
    p1 = Piece(lo, min(mid, cap), v0, first.slope).clipped(Q(0), cap)
    if p1 is not None:
        out.append(p1)
    if hi > mid and mid <= cap:
        v_mid = v0 + first.slope * (mid - lo)
        p2 = Piece(mid, min(hi, cap), v_mid, second.slope).clipped(Q(0), cap)
        if p2 is not None:
            out.append(p2)
    return out


def is_subadditive(f: Curve, horizon=None) -> bool:
    """Check ``f(s + u) <= f(s) + f(u)`` on the curve's exact region.

    Checked at all breakpoint pairs (sufficient for staircase curves,
    and a strong witness for general PWL curves); *horizon* defaults to
    the last breakpoint.
    """
    from repro._numeric import as_q

    hz = as_q(horizon) if horizon is not None else f.last_breakpoint
    points = [t for t in f.breakpoints() if t <= hz] + [hz]
    points = sorted(set(points))
    for s in points:
        for u in points:
            if s + u <= hz and f.at(s + u) > f.at(s) + f.at(u):
                return False
    return True


def subadditive_closure(f: Curve, max_iterations: int = 30) -> Curve:
    """The subadditive closure ``f* = min_k f^{(conv k)}`` (without the
    ``k = 0`` spike at the origin).

    Computed by squaring: ``f -> min(f, f conv f)`` until a fixpoint,
    *finitarily*: the result is the exact closure on the half-open exact
    region ``[0, f.last_breakpoint)`` and a sound upper bound of the true
    closure beyond (the original tail combined with the best
    subadditivity ray).  The closure of an upper arrival curve is the
    tightest curve enforcing the same constraints; subadditivity is
    guaranteed on the exact region.

    Raises:
        CurveError: if no fixpoint is reached within *max_iterations*
            (not expected for nondecreasing nonnegative inputs).
    """
    from repro.minplus.convolution import min_plus_conv

    horizon = f.last_breakpoint
    current = f
    for _ in range(max_iterations):
        squared = min_plus_conv(current, current, on_dip="fill")
        nxt = _closure_truncate(current.minimum(squared), f, horizon)
        if nxt == current:
            return current
        current = nxt
    raise CurveError("subadditive closure did not converge")


def _closure_truncate(curve: Curve, original: Curve, horizon: Q) -> Curve:
    """Finitary truncation of a closure iterate.

    The iterate is kept exactly on ``[0, horizon)``; beyond the horizon
    the result must remain an *upper bound of the true closure* (the
    iterate itself keeps refining further out forever).  Two sound tail
    bounds are combined:

    * the original curve (the closure never exceeds it);
    * the subadditivity ray ``f*(t*) + (f*(t*)/t*) * Delta`` for the
      breakpoint ``t*`` minimising ``f*(t)/t`` (since
      ``f*(Delta) <= f*(t) * (floor(Delta/t) + 1)``).

    Their minimum, floored by the exact value just before the horizon to
    keep the curve nondecreasing (the true closure is monotone, so the
    floor is also sound), forms the tail.
    """
    if horizon <= 0:
        return curve
    # Subadditivity ray from the best density point strictly inside the
    # exact region: f*(Delta) <= f*(t) * (floor(Delta/t) + 1)
    #                         <= f*(t) + (f*(t)/t) * Delta.
    best_t = None
    best_ratio = None
    for t in curve.breakpoints():
        if 0 < t < horizon:
            ratio = curve.at(t) / t
            if best_ratio is None or ratio < best_ratio:
                best_ratio, best_t = ratio, t
    tail = original
    if best_t is not None:
        from repro.minplus.builders import affine

        ray = affine(curve.at(best_t), best_ratio)
        tail = tail.minimum(ray)
    # Monotone floor: the true closure is nondecreasing, so it never
    # drops below the exact region's supremum (= the left limit at the
    # horizon for these nondecreasing iterates).
    from repro.minplus.builders import constant

    tail = tail.maximum(constant(curve.left_limit(horizon)))
    segs = [s for s in curve.segments if s.start < horizon]
    tail_idx = tail._segment_index_at(horizon)
    segs.append(
        Segment(horizon, tail.at(horizon), tail.segments[tail_idx].slope)
    )
    segs.extend(s for s in tail.segments if s.start > horizon)
    return Curve(segs)
