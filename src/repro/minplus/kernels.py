"""Vectorized float64 min-plus kernels with certified outward rounding.

This module is the fast tier of the two-tier (*fast-filter / exact-verify*)
kernel design selected by :mod:`repro.minplus.backend`:

* a :class:`Curve` is *lowered* once into packed breakpoint arrays
  (``starts / values / slopes`` plus segment-end values) stored as **pairs
  of float64 arrays** — a lower and an upper bound per coordinate,
  produced by outward rounding (``math.nextafter`` guard bands around the
  correctly-rounded float of each exact rational);
* every derived quantity is computed with **interval arithmetic** whose
  every float operation is re-widened outward by one ulp, so each result
  interval is a *certificate*: the exact rational value provably lies
  inside it;
* screens answer vectorized queries (pseudo-inverse sweeps, curve
  evaluation, envelope-piece domination, extremum candidates) with such
  intervals.  A query whose interval does not overlap the decision
  boundary is settled by the float tier (``kernel.screen_hits``); the
  remainder — typically a handful of near-ties — fall back to the exact
  :class:`~fractions.Fraction` path (``kernel.exact_fallbacks``), so the
  hybrid backend's final results are **identical** to the exact backend's.

Lowering is cached per curve object and deduplicated across structurally
equal curves through the interning table of
:meth:`repro.minplus.curve.Curve.interned` (``curve.intern_hits``), and
whole operations (convolution, deconvolution, horizontal deviation) are
memoized on curve fingerprints (``kernel.memo_hits``).

Everything here degrades gracefully: without NumPy (:data:`AVAILABLE` is
False) every helper returns ``None`` and callers run the exact path.
"""

from __future__ import annotations

from collections import OrderedDict
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro import perf
from repro._numeric import Q
from repro.minplus import backend as backend_mod
from repro.resilience.budget import checkpoint

try:  # pragma: no cover - the import either works or it doesn't
    import numpy as np

    AVAILABLE = True
except ImportError:  # pragma: no cover
    np = None
    AVAILABLE = False

__all__ = [
    "AVAILABLE",
    "Lowered",
    "lowered",
    "op_cache_get",
    "op_cache_put",
    "op_cache_clear",
    "screened_pinv_delay_groups",
    "screened_backlog_max",
    "conv_prune_mask",
    "deconv_prune_mask",
    "conv_point_value_screened",
    "deconv_point_value_screened",
    "screened_delay_backlog",
    "fused_deconv_hdev",
    "fused_conv_hdev",
]

_NEG = float("-inf")
_POS = float("inf")


# ----------------------------------------------------------------------
# Outward-rounded interval primitives
# ----------------------------------------------------------------------

def _down(a):
    """One-ulp-down guard band (sound lower bound after a float op)."""
    return np.nextafter(a, _NEG)


def _up(a):
    """One-ulp-up guard band (sound upper bound after a float op)."""
    return np.nextafter(a, _POS)


def _q_floats(qs: Sequence) -> "np.ndarray":
    """Correctly-rounded float64 of each exact rational."""
    return np.array([float(q) for q in qs], dtype=np.float64)


def q_bounds(qs: Sequence) -> Tuple["np.ndarray", "np.ndarray"]:
    """Certified (lower, upper) float64 bounds of exact rationals.

    ``float(Fraction)`` rounds to nearest, so the true value lies within
    one ulp of it; widening both ways is always sound (and exact inputs
    merely get a one-ulp slack that no screen decision can miss by,
    because screens only certify *strict* separations).
    """
    mids = _q_floats(qs)
    return _down(mids), _up(mids)


def _imul(alo, ahi, blo, bhi):
    """Outward-rounded interval product of two interval arrays."""
    p1, p2, p3, p4 = alo * blo, alo * bhi, ahi * blo, ahi * bhi
    lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
    hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
    return _down(lo), _up(hi)


# ----------------------------------------------------------------------
# Lowered curves
# ----------------------------------------------------------------------

class Lowered:
    """Packed breakpoint-array form of one curve, outward rounded.

    Attributes:
        n: Segment count.
        nondecreasing: Exact monotonicity flag (screens that rely on
            monotone reasoning are gated on it).
        tail_sign: Exact sign (-1/0/1) of the curve's tail rate.
        S_lo/S_hi: Bounds on segment start abscissae.
        V_lo/V_hi: Bounds on segment start values.
        SL_lo/SL_hi: Bounds on segment slopes.
        VE_lo/VE_hi: Bounds on segment *end* values (left limit at the
            next start); the last entry encodes the tail limit
            (``+inf`` for a positive tail rate).
        VE_lo_rm/VE_hi_rm: Running maxima of the end-value bounds
            (restores the sortedness float noise can break, so
            ``searchsorted`` stays valid; see :meth:`pinv_bounds`).
    """

    __slots__ = (
        "n",
        "nondecreasing",
        "tail_sign",
        "S_lo",
        "S_hi",
        "V_lo",
        "V_hi",
        "SL_lo",
        "SL_hi",
        "VE_lo",
        "VE_hi",
        "VE_lo_rm",
        "VE_hi_rm",
        "S_lo_ext",
        "S_hi_ext",
    )

    def __init__(self, curve) -> None:
        segs = curve.segments
        self.n = len(segs)
        self.nondecreasing = curve.is_nondecreasing()
        rate = curve.tail_rate
        self.tail_sign = (rate > 0) - (rate < 0)
        self.S_lo, self.S_hi = q_bounds([s.start for s in segs])
        self.V_lo, self.V_hi = q_bounds([s.value for s in segs])
        self.SL_lo, self.SL_hi = q_bounds([s.slope for s in segs])
        # Segment-end values: v + slope * (next_start - start).
        ve_lo = np.empty(self.n)
        ve_hi = np.empty(self.n)
        if self.n > 1:
            dt_lo = np.maximum(_down(self.S_lo[1:] - self.S_hi[:-1]), 0.0)
            dt_hi = np.maximum(_up(self.S_hi[1:] - self.S_lo[:-1]), 0.0)
            m_lo, m_hi = _imul(
                self.SL_lo[:-1], self.SL_hi[:-1], dt_lo, dt_hi
            )
            ve_lo[:-1] = _down(self.V_lo[:-1] + m_lo)
            ve_hi[:-1] = _up(self.V_hi[:-1] + m_hi)
        if self.tail_sign > 0:
            ve_lo[-1] = _POS
            ve_hi[-1] = _POS
        elif self.tail_sign < 0:
            ve_lo[-1] = _NEG
            ve_hi[-1] = _NEG
        else:
            ve_lo[-1] = self.V_lo[-1]
            ve_hi[-1] = self.V_hi[-1]
        self.VE_lo = ve_lo
        self.VE_hi = ve_hi
        self.VE_lo_rm = np.maximum.accumulate(ve_lo)
        self.VE_hi_rm = np.maximum.accumulate(ve_hi)
        self.S_lo_ext = np.append(self.S_lo, _POS)
        self.S_hi_ext = np.append(self.S_hi, _POS)

    # -- evaluation -----------------------------------------------------

    def eval_bounds(self, t_lo, t_hi):
        """Certified bounds on ``f(t)`` for interval times (nondecreasing
        curves only): true ``f(t) in [lo, hi]`` for every ``t`` in the
        given time interval intersected with ``[0, oo)``."""
        # Lower: the segment k with s_k <= t_lo gives f(t) >= f(s_k); the
        # affine extension evaluated downward is valid while t stays in
        # segment k, and capping at the segment-end value keeps the bound
        # sound when t has already moved past it (f nondecreasing).
        k = np.searchsorted(self.S_hi, t_lo, side="right") - 1
        k0 = np.clip(k, 0, self.n - 1)
        dt = np.maximum(_down(t_lo - self.S_hi[k0]), 0.0)
        m_lo, _ = _imul(
            np.maximum(self.SL_lo[k0], 0.0),
            np.maximum(self.SL_hi[k0], 0.0),
            dt,
            dt,
        )
        lo = np.minimum(_down(self.V_lo[k0] + m_lo), self.VE_lo[k0])
        # Upper: the last segment j with a start bound <= t_hi; its
        # upward affine extension dominates every earlier segment's value.
        j = np.searchsorted(self.S_lo, t_hi, side="right") - 1
        j0 = np.clip(j, 0, self.n - 1)
        dt2 = np.maximum(_up(t_hi - self.S_lo[j0]), 0.0)
        _, m_hi = _imul(
            np.maximum(self.SL_lo[j0], 0.0),
            np.maximum(self.SL_hi[j0], 0.0),
            dt2,
            dt2,
        )
        hi = _up(self.V_hi[j0] + m_hi)
        return lo, hi

    def llim_bounds(self, t_lo, t_hi):
        """Certified bounds on the left limit ``f(t-)`` (nondecreasing
        curves, ``t > 0``)."""
        # Upper: f(t-) <= f(t) (jumps are upward).
        _, hi = self.eval_bounds(t_lo, t_hi)
        # Lower: like eval_bounds but through the segment *strictly*
        # before t_lo, so a jump exactly at t is excluded.
        kl = np.searchsorted(self.S_hi, t_lo, side="left") - 1
        valid = kl >= 0
        k0 = np.clip(kl, 0, self.n - 1)
        dt = np.maximum(_down(t_lo - self.S_hi[k0]), 0.0)
        m_lo, _ = _imul(
            np.maximum(self.SL_lo[k0], 0.0),
            np.maximum(self.SL_hi[k0], 0.0),
            dt,
            dt,
        )
        lo = np.minimum(_down(self.V_lo[k0] + m_lo), self.VE_lo[k0])
        return np.where(valid, lo, _NEG), hi

    # -- pseudo-inverse -------------------------------------------------

    def pinv_bounds(self, w_lo, w_hi):
        """Certified bounds on ``inf { t : f(t) >= w }`` (nondecreasing).

        Returns ``(t_lo, t_hi, certain_inf, possible_inf)``.  Where
        ``certain_inf`` the curve provably never reaches ``w``; where
        ``possible_inf`` the float tier cannot decide and the caller must
        consult the exact path.
        """
        n = self.n
        # First segment that possibly reaches w by its end, and first
        # that certainly does.  The running max only repairs float-level
        # sortedness: the index found is the first segment whose own
        # end-value bound clears the threshold.
        i0 = np.searchsorted(self.VE_hi_rm, w_lo, side="left")
        i1 = np.searchsorted(self.VE_lo_rm, w_hi, side="left")
        certain_inf = i0 >= n
        possible_inf = (i1 >= n) & ~certain_inf
        i0c = np.minimum(i0, n - 1)
        i1c = np.minimum(i1, n - 1)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            # Lower bound: nothing before segment i0 answers.  If the
            # answer may sit at i0's start, that start is the bound;
            # otherwise the crossing is no earlier than the downward
            # division, and never later than the next start.
            num_lo = _down(w_lo - self.V_hi[i0c])
            div_lo = _down(num_lo / self.SL_hi[i0c])
            div_lo = np.where(np.isfinite(div_lo), div_lo, 0.0)
            t_lo = np.where(
                self.V_hi[i0c] >= w_lo,
                self.S_lo[i0c],
                np.minimum(
                    np.maximum(_down(self.S_lo[i0c] + div_lo), self.S_lo[i0c]),
                    self.S_lo_ext[i0c + 1],
                ),
            )
            # Upper bound: segment i1 certainly reaches w by its end, so
            # the answer is at most its next start; if i1's start value
            # already certainly clears w, its start is the bound, else
            # the upward division refines it.
            num_hi = _up(w_hi - self.V_lo[i1c])
            sl = np.maximum(self.SL_lo[i1c], 0.0)
            div_hi = _up(num_hi / sl)
            div_hi = np.where(np.isnan(div_hi), _POS, div_hi)
            t_hi = np.where(
                self.V_lo[i1c] >= w_hi,
                self.S_hi[i1c],
                np.minimum(_up(self.S_hi[i1c] + div_hi), self.S_hi_ext[i1c + 1]),
            )
        t_lo = np.where(certain_inf, _POS, t_lo)
        t_hi = np.where(certain_inf | possible_inf, _POS, t_hi)
        return t_lo, t_hi, certain_inf, possible_inf

    def upinv_bounds(self, w_lo, w_hi):
        """Certified bounds on ``inf { t : f(t) > w }`` (nondecreasing).

        Same contract as :meth:`pinv_bounds` with strict comparisons:
        ``certain_inf`` means the curve provably never exceeds ``w``.
        """
        n = self.n
        i0 = np.searchsorted(self.VE_hi_rm, w_lo, side="right")
        i1 = np.searchsorted(self.VE_lo_rm, w_hi, side="right")
        certain_inf = i0 >= n
        possible_inf = (i1 >= n) & ~certain_inf
        i0c = np.minimum(i0, n - 1)
        i1c = np.minimum(i1, n - 1)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            num_lo = _down(w_lo - self.V_hi[i0c])
            div_lo = _down(num_lo / self.SL_hi[i0c])
            div_lo = np.where(np.isfinite(div_lo), div_lo, 0.0)
            t_lo = np.where(
                self.V_hi[i0c] > w_lo,
                self.S_lo[i0c],
                np.minimum(
                    np.maximum(_down(self.S_lo[i0c] + div_lo), self.S_lo[i0c]),
                    self.S_lo_ext[i0c + 1],
                ),
            )
            num_hi = _up(w_hi - self.V_lo[i1c])
            sl = np.maximum(self.SL_lo[i1c], 0.0)
            div_hi = _up(num_hi / sl)
            div_hi = np.where(np.isnan(div_hi), _POS, div_hi)
            t_hi = np.where(
                self.V_lo[i1c] > w_hi,
                self.S_hi[i1c],
                np.minimum(_up(self.S_hi[i1c] + div_hi), self.S_hi_ext[i1c + 1]),
            )
        t_lo = np.where(certain_inf, _POS, t_lo)
        t_hi = np.where(certain_inf | possible_inf, _POS, t_hi)
        return t_lo, t_hi, certain_inf, possible_inf


def lowered(curve) -> Optional[Lowered]:
    """The cached :class:`Lowered` form of *curve* (None without NumPy).

    Per-object lowering is cached on the curve; structurally equal curves
    share one lowering through the interning table
    (:meth:`~repro.minplus.curve.Curve.interned`).
    """
    if not AVAILABLE:
        return None
    lw = curve._lowered
    if lw is not None:
        return lw
    canon = curve.interned()
    if canon is not curve and canon._lowered is not None:
        curve._lowered = canon._lowered
        return canon._lowered
    perf.record("kernel.lowerings")
    lw = Lowered(curve)
    curve._lowered = lw
    canon._lowered = lw
    return lw


# ----------------------------------------------------------------------
# Fingerprint-keyed operation memo
# ----------------------------------------------------------------------

_OP_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_OP_CACHE_CAP = 4096


def op_cache_get(key: tuple):
    """Memoized result of a prior min-plus operation, or None."""
    hit = _OP_CACHE.get(key)
    if hit is not None:
        _OP_CACHE.move_to_end(key)
        perf.record("kernel.memo_hits")
    else:
        perf.record("kernel.memo_misses")
    return hit


def op_cache_put(key: tuple, value) -> None:
    """Memoize an operation result under a fingerprint key (LRU)."""
    _OP_CACHE[key] = value
    _OP_CACHE.move_to_end(key)
    while len(_OP_CACHE) > _OP_CACHE_CAP:
        _OP_CACHE.popitem(last=False)
        perf.record("kernel.memo_evictions")


def op_cache_clear() -> None:
    """Drop every memoized operation result (benchmarks / tests / the
    per-job cache isolation of :func:`repro.parallel.reset_process_caches`)."""
    _OP_CACHE.clear()


def op_cache_stats() -> Tuple[int, int]:
    """``(entries, capacity)`` of the operation memo — lets tests and the
    execution plane assert that cache isolation actually emptied it."""
    return (len(_OP_CACHE), _OP_CACHE_CAP)


# ----------------------------------------------------------------------
# Screened maximum selectors (delay / backlog hot paths)
# ----------------------------------------------------------------------

def screened_pinv_delay_groups(
    beta,
    offsets: Sequence,
    works: Sequence,
    group_ids: Sequence[int],
    n_groups: int,
    w_bounds=None,
    o_bounds=None,
):
    """Two-tier per-group maximum of ``beta^{-1}(work) - offset``.

    Replicates the exact per-tuple loop — strict-improvement maxima
    starting from 0, first-attainer tie-breaking, and the position of the
    first unreachable work — while evaluating exactly only the queries
    the float certificate cannot eliminate.

    Returns ``None`` when the screen is unavailable (no NumPy, or a
    service curve the monotone reasoning does not cover); otherwise
    ``(first_inf_index, results)`` where ``first_inf_index`` is the index
    of the first query whose work the service never provides (or None)
    and ``results[g] = (best, first_index)`` per group, ``first_index``
    being None when the group's maximum is 0.

    ``w_bounds``/``o_bounds`` optionally pass precomputed
    :func:`q_bounds` pairs of *works*/*offsets*: the fused sweep
    (:func:`screened_delay_backlog`) shares one rational-to-interval
    lowering pass between this screen and the backlog screen.
    """
    gl = lowered(beta)
    if gl is None or not gl.nondecreasing:
        return None
    n = len(works)
    if n == 0:
        return None, [(Q(0), None) for _ in range(n_groups)]
    # Amortised budget charge for the vectorized sweep over n queries.
    checkpoint(1 + n // 64)
    from repro.minplus.deviation import (
        lower_pseudo_inverse,
        lower_pseudo_inverse_batch,
    )
    from repro._numeric import is_inf

    w_lo, w_hi = w_bounds if w_bounds is not None else q_bounds(works)
    o_lo, o_hi = o_bounds if o_bounds is not None else q_bounds(offsets)
    t_lo, t_hi, certain_inf, possible_inf = gl.pinv_bounds(w_lo, w_hi)
    # Reachability first: the exact loop reports the first unreachable
    # work in query order, before any maximum is taken.
    inf_idx = None
    if certain_inf.any() or possible_inf.any():
        amb = np.flatnonzero(possible_inf)
        truly_inf = np.array(
            [is_inf(lower_pseudo_inverse(beta, works[i])) for i in amb]
        )
        perf.record("kernel.exact_fallbacks", len(amb))
        inf_mask = certain_inf.copy()
        if len(amb):
            inf_mask[amb] = truly_inf
            refined = amb[~truly_inf]
            for i in refined:
                exact_t = lower_pseudo_inverse(beta, works[i])
                t_lo[i] = np.nextafter(float(exact_t), _NEG)
                t_hi[i] = np.nextafter(float(exact_t), _POS)
        hits = np.flatnonzero(inf_mask)
        if len(hits):
            inf_idx = int(hits[0])
    d_lo = _down(t_lo - o_hi)
    d_hi = _up(t_hi - o_lo)
    gid = np.asarray(group_ids)
    best_lo = np.zeros(n_groups)
    np.maximum.at(best_lo, gid, np.where(np.isfinite(d_lo), d_lo, _NEG))
    survivors = np.flatnonzero((d_hi >= best_lo[gid]) & (d_hi > 0.0))
    perf.record("kernel.screen_hits", n - len(survivors))
    results: List[Tuple[Q, Optional[int]]] = [
        (Q(0), None) for _ in range(n_groups)
    ]
    if len(survivors):
        extra = len(survivors) - len(set(int(gid[i]) for i in survivors))
        if extra > 0:
            perf.record("kernel.exact_fallbacks", extra)
        invs = lower_pseudo_inverse_batch(
            beta, [works[int(i)] for i in survivors]
        )
        for i, inv in zip(survivors, invs):
            i = int(i)
            if is_inf(inv):  # pragma: no cover - caught by the inf pass
                continue
            d = inv - offsets[i]
            g = int(gid[i])
            if d > results[g][0]:
                results[g] = (d, i)
    return inf_idx, results


def screened_backlog_max(
    beta, times: Sequence, works: Sequence, w_bounds=None, t_bounds=None
):
    """Two-tier maximum of ``work - beta(time)`` over request tuples.

    Same contract shape as :func:`screened_pinv_delay_groups` restricted
    to one group: returns ``None`` when unavailable, else
    ``(best, first_index)`` with exact strict-improvement semantics.
    ``w_bounds``/``t_bounds`` share precomputed :func:`q_bounds` pairs
    exactly as on :func:`screened_pinv_delay_groups`.
    """
    gl = lowered(beta)
    if gl is None or not gl.nondecreasing:
        return None
    n = len(works)
    if n == 0:
        return Q(0), None
    checkpoint(1 + n // 64)
    w_lo, w_hi = w_bounds if w_bounds is not None else q_bounds(works)
    t_lo, t_hi = t_bounds if t_bounds is not None else q_bounds(times)
    v_lo, v_hi = gl.eval_bounds(np.maximum(t_lo, 0.0), t_hi)
    b_lo = _down(w_lo - v_hi)
    b_hi = _up(w_hi - v_lo)
    best_lo = max(0.0, float(np.max(b_lo)))
    survivors = np.flatnonzero((b_hi >= best_lo) & (b_hi > 0.0))
    perf.record("kernel.screen_hits", n - len(survivors))
    if len(survivors) > 1:
        perf.record("kernel.exact_fallbacks", len(survivors) - 1)
    best: Q = Q(0)
    best_idx: Optional[int] = None
    for i in survivors:
        i = int(i)
        b = works[i] - beta.at(times[i])
        if b > best:
            best = b
            best_idx = i
    return best, best_idx


# ----------------------------------------------------------------------
# Envelope-piece domination pruning (convolution / deconvolution)
# ----------------------------------------------------------------------

def _piece_arrays(pieces):
    lo_lo, lo_hi = q_bounds([p.lo for p in pieces])
    hi_lo, hi_hi = q_bounds([p.hi for p in pieces])
    v_lo, v_hi = q_bounds([p.value for p in pieces])
    return lo_lo, lo_hi, hi_lo, hi_hi, v_lo, v_hi


_CONV_PROBES = 64
_CONV_GRID = 512


def _conv_witness_grid(fl, gl, cap_hi):
    """Certified staircase upper bound of ``C(t) = inf_s f(s) + g(t-s)``.

    Every probe split ``s`` (an exact machine float in ``[0, tau]``)
    yields the witness ``C(tau) <= f(s') + g(u)`` for the admissible
    split ``s' = tau - u`` with ``u = clamp(up(tau - s), 0, tau)``:
    ``u >= tau - s`` makes ``s' <= s``, and both curves nondecreasing
    give ``f(s') <= f(s)`` and the upward evaluations certify the rest.
    Probes come from both curves' breakpoints (subsampled evenly, plus
    ``s = 0`` — the classical ``f(0) + g(t)`` subset bound) in both
    role orders, and the pointwise minimum over probes upper-bounds
    ``C`` at every grid point.
    """
    tau = np.linspace(0.0, max(cap_hi, 0.0), _CONV_GRID)
    best = np.full(tau.shape, _POS)
    native = backend_mod.native_preferred("conv", max(fl.n, gl.n))
    for lw_a, lw_b in ((fl, gl), (gl, fl)):
        s_all = np.unique(
            np.concatenate([np.maximum(lw_a.S_lo, 0.0), [0.0]])
        )
        s_all = s_all[np.isfinite(s_all)]
        if len(s_all) > _CONV_PROBES:
            idx = np.linspace(0, len(s_all) - 1, _CONV_PROBES).astype(int)
            s_all = s_all[idx]
        _, fs_hi = lw_a.eval_bounds(s_all, s_all)
        if native:
            from repro.minplus import _native

            if _native.conv_witness_grid(tau, s_all, fs_hi, lw_b, best):
                continue
        for k in range(len(s_all)):
            s = s_all[k]
            u = np.clip(_up(tau - s), 0.0, tau)
            _, b_hi = lw_b.eval_bounds(u, u)
            cand = _up(fs_hi[k] + b_hi)
            best = np.where(tau >= s, np.minimum(best, cand), best)
    return tau, best


def conv_prune_mask(f, g, fp, gp, cap):
    """Keep-mask over segment pairs for ``f (*) g`` (lower envelope).

    A pair's Minkowski pieces all start at value ``f_i + g_j`` and are
    nondecreasing (both curves nondecreasing), while the true convolution
    ``C`` is nondecreasing and bounded above both by the *subset
    envelope* ``UB(t) = min(f(0) + g(t), g(0) + f(t))`` (any subset of
    pieces upper-bounds a lower envelope) and by the probe-witness
    staircase of :func:`_conv_witness_grid`.  A pair whose certified
    start value exceeds a certified upper bound of ``C`` at-or-after its
    domain's right end therefore lies strictly above ``C`` everywhere it
    is defined (``C`` nondecreasing) and can never supply the envelope —
    dropping it provably leaves the computed curve (and its breakpoint
    corrections) unchanged.

    Under :func:`repro.minplus.backend.native_enabled` the pairwise
    inner loop runs in the compiled tier, which makes one pass with no
    ``n^2`` temporaries; it prunes a sound subset of the vectorized
    mask (the subset-envelope bound is grid-quantized there), so the
    result curve is identical either way.

    Returns a boolean ``(len(fp), len(gp))`` keep-mask, or None when the
    screen is unavailable or unsound (non-monotone inputs).
    """
    fl = lowered(f)
    gl = lowered(g)
    if fl is None or gl is None:
        return None
    if not (fl.nondecreasing and gl.nondecreasing):
        return None
    if not fp or not gp:
        return None
    a_lo_lo, _, a_hi_lo, a_hi_hi, a_v_lo, a_v_hi = _piece_arrays(fp)
    b_lo_lo, _, b_hi_lo, b_hi_hi, b_v_lo, b_v_hi = _piece_arrays(gp)
    cap_lo, cap_hi = q_bounds([cap])
    tau, stair = _conv_witness_grid(fl, gl, float(cap_hi[0]))
    if backend_mod.native_preferred("conv", max(fl.n, gl.n)):
        from repro.minplus import _native

        keep = _native.conv_keep_mask(
            a_v_lo, b_v_lo, a_lo_lo, b_lo_lo, a_hi_hi, b_hi_hi,
            float(cap_hi[0]), tau, stair,
        )
        if keep is not None:
            perf.record("kernel.pairs_pruned", int(keep.size - keep.sum()))
            perf.record("kernel.pairs_kept", int(keep.sum()))
            return keep
    f0_hi = float(_up(np.array([float(f.at(0))]))[0])
    g0_hi = float(_up(np.array([float(g.at(0))]))[0])
    # Pair start values (certified lower) and domain right ends
    # (certified upper, clipped at the cap).
    v0_lo = _down(a_v_lo[:, None] + b_v_lo[None, :])
    end_hi = np.minimum(_up(a_hi_hi[:, None] + b_hi_hi[None, :]), cap_hi[0])
    shape = end_hi.shape
    ends = end_hi.ravel()
    _, g_at_end_hi = gl.eval_bounds(ends, ends)
    _, f_at_end_hi = fl.eval_bounds(ends, ends)
    ub_hi = _up(
        np.minimum(f0_hi + g_at_end_hi, g0_hi + f_at_end_hi)
    ).reshape(shape)
    keep = ~(v0_lo > ub_hi)
    # Staircase bound: C(t) <= C(tau_k) <= stair[k] for every t in the
    # pair's domain once tau_k >= its right end.
    k_idx = np.clip(np.searchsorted(tau, ends, side="left"), 0, len(tau) - 1)
    keep &= ~(v0_lo > stair[k_idx].reshape(shape))
    # Pairs that provably start beyond the cap contribute nothing.
    lo_lo = _down(a_lo_lo[:, None] + b_lo_lo[None, :])
    keep &= ~(lo_lo > cap_hi[0])
    pruned = int(keep.size - keep.sum())
    perf.record("kernel.pairs_pruned", pruned)
    perf.record("kernel.pairs_kept", int(keep.sum()))
    return keep


_DECONV_PROBES = 64
_DECONV_GRID = 512
_DECONV_SPLITS = 4


def _deconv_witness_grid(fl, gl, u_probe, cap_hi):
    """Certified staircase lower bound of ``D(t) = sup_u f(t+u) - g(u)``.

    Every probe offset ``u`` (an exact machine float ``>= 0``) yields the
    witness ``f(tau + u) - g(u) <= D(tau)``; evaluating f downward and g
    upward keeps the bound sound, and a running maximum over the grid
    makes the staircase nondecreasing like ``D`` itself, so looking up
    the step at-or-before ``t`` lower-bounds ``D(t)``.
    """
    tau = np.linspace(0.0, max(cap_hi, 0.0), _DECONV_GRID)
    best = np.full(tau.shape, _NEG)
    if backend_mod.native_preferred("deconv", max(fl.n, gl.n)):
        from repro.minplus import _native

        probes = np.ascontiguousarray(u_probe, dtype=np.float64)
        if _native.deconv_witness_grid(tau, probes, fl, gl, best):
            return tau, best
    for u in u_probe:
        x = _down(tau + u)
        f_lo, _ = fl.eval_bounds(x, x)
        ua = np.array([u])
        g_hi = gl.eval_bounds(ua, ua)[1][0]
        best = np.maximum(best, _down(f_lo - g_hi))
    return tau, np.maximum.accumulate(best)


def deconv_prune_mask(f, g, fp, gp, u_max, cap):
    """Keep-mask over segment pairs for ``f (/) g`` (upper envelope).

    Dual of :func:`conv_prune_mask` with two refinements.  The true
    deconvolution ``D(t) = sup_u f(t+u) - g(u)`` is nondecreasing and
    lower-bounded by *any* probe witness ``f(t+u) - g(u)``; a staircase
    of such witnesses on a time grid (:func:`_deconv_witness_grid`)
    gives a certified floor ``D_lo``.  A pair's value at time ``t`` is
    at most ``V(t) = f(min(a.hi, t + b.hi)) - g(max(b.lo, a.lo - t))``,
    nondecreasing in ``t``.  Subdividing the pair's domain into
    checkpoints ``c_0 <= ... <= c_m`` and requiring
    ``V(c_{i+1}) < D_lo(c_i)`` on every sub-interval certifies the pair
    strictly below the envelope everywhere — comparing only the global
    peak against the domain's left end would spare every wide pair.
    """
    fl = lowered(f)
    gl = lowered(g)
    if fl is None or gl is None:
        return None
    if not (fl.nondecreasing and gl.nondecreasing):
        return None
    if not fp or not gp:
        return None
    a_lo_lo, a_lo_hi, _, a_hi_hi, _, _ = _piece_arrays(fp)
    b_lo_lo, b_lo_hi, _, b_hi_hi, _, _ = _piece_arrays(gp)
    cap_lo, cap_hi = q_bounds([cap])
    # Probe offsets: u = 0, g's breakpoints and u_max (any float >= 0 is
    # a valid witness offset), subsampled evenly.
    u_all = np.unique(
        np.concatenate(
            [
                np.array([0.0, max(float(u_max), 0.0)]),
                np.maximum(gl.S_lo, 0.0),
            ]
        )
    )
    u_all = u_all[np.isfinite(u_all)]
    if len(u_all) > _DECONV_PROBES:
        idx = np.linspace(0, len(u_all) - 1, _DECONV_PROBES).astype(int)
        u_all = u_all[idx]
    tau, d_lo = _deconv_witness_grid(fl, gl, u_all, float(cap_hi[0]))
    if backend_mod.native_preferred("deconv", max(fl.n, gl.n)):
        from repro.minplus import _native

        keep = _native.deconv_keep_mask(
            a_lo_lo, a_hi_hi, b_lo_lo, b_hi_hi,
            float(cap_hi[0]), _DECONV_SPLITS, tau, d_lo, fl, gl,
        )
        if keep is not None:
            perf.record("kernel.pairs_pruned", int(keep.size - keep.sum()))
            perf.record("kernel.pairs_kept", int(keep.sum()))
            return keep
    # Pair domains [t0, t1] (outward-rounded floats).
    t0_lo = np.maximum(_down(a_lo_lo[:, None] - b_hi_hi[None, :]), 0.0)
    t1_hi = np.minimum(
        _up(a_hi_hi[:, None] - b_lo_lo[None, :]), cap_hi[0]
    )
    t1_hi = np.maximum(t1_hi, t0_lo)
    a_lo_b = a_lo_lo[:, None] + np.zeros_like(t0_lo)
    a_hi_b = a_hi_hi[:, None] + np.zeros_like(t0_lo)
    b_lo_b = b_lo_lo[None, :] + np.zeros_like(t0_lo)
    b_hi_b = b_hi_hi[None, :] + np.zeros_like(t0_lo)
    prune = np.ones(t0_lo.shape, dtype=bool)
    for i in range(_DECONV_SPLITS):
        w0 = i / _DECONV_SPLITS
        w1 = (i + 1) / _DECONV_SPLITS
        c0 = t0_lo + _down(w0 * (t1_hi - t0_lo)) if i else t0_lo
        c1 = t1_hi if i == _DECONV_SPLITS - 1 else _up(
            t0_lo + w1 * (t1_hi - t0_lo)
        )
        # Pair value upper bound at the sub-interval's right end.
        s_arg = np.minimum(a_hi_b, _up(c1 + b_hi_b)).ravel()
        _, f_hi = fl.eval_bounds(s_arg, s_arg)
        u_arg = np.maximum(
            b_lo_b, np.maximum(_down(a_lo_b - c1), 0.0)
        ).ravel()
        g_lo, _ = gl.eval_bounds(u_arg, u_arg)
        v_hi = _up(f_hi - g_lo).reshape(t0_lo.shape)
        # Envelope floor at the sub-interval's left end.
        k = np.searchsorted(tau, c0.ravel(), side="right") - 1
        floor = np.where(k >= 0, d_lo[np.clip(k, 0, len(tau) - 1)], _NEG)
        prune &= v_hi < floor.reshape(t0_lo.shape)
    keep = ~prune
    # Pairs entirely outside [0, cap] contribute nothing.
    t_hi_lo = _down(a_lo_lo[:, None] - b_hi_hi[None, :])
    keep &= ~(t_hi_lo > cap_hi[0])
    t_hi_hi = _up(a_hi_hi[:, None] - b_lo_lo[None, :])
    keep &= ~(t_hi_hi < 0.0)
    pruned = int(keep.size - keep.sum())
    perf.record("kernel.pairs_pruned", pruned)
    perf.record("kernel.pairs_kept", int(keep.sum()))
    return keep


# ----------------------------------------------------------------------
# Screened exact point values (breakpoint correction / tail joints)
# ----------------------------------------------------------------------

def _min_survivors(lo, hi, certain, possible):
    """Indices that can still attain the minimum.

    ``certain``/``possible`` flag candidate feasibility; the threshold is
    the smallest upper bound among certainly-feasible candidates, and
    every possibly-feasible candidate whose lower bound does not exceed
    it survives (so the set provably contains every feasible argmin).
    """
    if not certain.any():
        return np.flatnonzero(possible)
    thresh = np.min(hi[certain])
    return np.flatnonzero(possible & (lo <= thresh))


def conv_point_value_screened(f, g, t) -> Optional[Q]:
    """Exact ``inf { f(s) + g(t-s) : 0 <= s <= t }`` via the float screen.

    Enumerates the same candidate set as
    :func:`repro.minplus.convolution.conv_point_value`, certifies away
    candidates that provably do not attain the infimum, and evaluates the
    survivors exactly.  Returns None when the screen is unavailable.
    """
    fl = lowered(f)
    gl = lowered(g)
    if fl is None or gl is None or not (fl.nondecreasing and gl.nondecreasing):
        return None
    t_lo, t_hi = q_bounds([t])
    t_lo, t_hi = t_lo[0], t_hi[0]

    def _one_side(al, bl):
        # Candidates s at al's breakpoints: al.at(s) + bl(t - s), plus the
        # left-limit variant al(s-) for s > 0.
        u_lo = _down(t_lo - al.S_hi)
        u_hi = _up(t_hi - al.S_lo)
        feas_certain = al.S_hi <= t_lo
        feas_possible = al.S_lo <= t_hi
        bu_lo, bu_hi = bl.eval_bounds(np.maximum(u_lo, 0.0), u_hi)
        v_lo = _down(al.V_lo + bu_lo)
        v_hi = _up(al.V_hi + bu_hi)
        # Left limits: al(s_k-) = end value of segment k-1.
        ll_lo = np.concatenate(([_POS], _down(al.VE_lo[:-1] + bu_lo[1:])))
        ll_hi = np.concatenate(([_POS], _up(al.VE_hi[:-1] + bu_hi[1:])))
        return (
            np.concatenate((v_lo, ll_lo)),
            np.concatenate((v_hi, ll_hi)),
            np.concatenate((feas_certain, feas_certain)),
            np.concatenate((feas_possible, feas_possible)),
        )

    fv_lo, fv_hi, fc, fp_ = _one_side(fl, gl)
    gv_lo, gv_hi, gc, gp_ = _one_side(gl, fl)
    lo = np.concatenate((fv_lo, gv_lo))
    hi = np.concatenate((fv_hi, gv_hi))
    certain = np.concatenate((fc, gc)) & np.isfinite(hi)
    possible = np.concatenate((fp_, gp_)) & np.isfinite(lo)
    survivors = _min_survivors(lo, hi, certain, possible)
    total = len(lo)
    perf.record("kernel.screen_hits", total - len(survivors))
    if len(survivors) > 1:
        perf.record("kernel.exact_fallbacks", len(survivors) - 1)
    nf = fl.n
    best: Optional[Q] = None
    f_bps = [s.start for s in f.segments]
    g_bps = [s.start for s in g.segments]
    for idx in survivors:
        idx = int(idx)
        if idx < 2 * nf:
            s = f_bps[idx % nf]
            if not (0 <= s <= t):
                continue
            left = idx >= nf
            if left and s == 0:
                continue
            fs = f.left_limit(s) if left else f.at(s)
            val = fs + g.at(t - s)
        else:
            j = idx - 2 * nf
            ng = gl.n
            u = g_bps[j % ng]
            if not (0 <= u <= t):
                continue
            left = j >= ng
            if left and u == 0:
                continue
            gu = g.left_limit(u) if left else g.at(u)
            val = f.at(t - u) + gu
        if best is None or val < best:
            best = val
    return best


def deconv_point_value_screened(f, g, t, u_max) -> Optional[Q]:
    """Exact ``sup { f(t+u) - g(u) : 0 <= u <= u_max }`` via the screen.

    Mirrors :func:`repro.minplus.convolution.deconv_point_value`'s
    candidate set (g's breakpoints, f's breakpoints pulled back by ``t``,
    and the interval ends, each with its paired-left-limit variant).
    Returns None when the screen is unavailable.
    """
    fl = lowered(f)
    gl = lowered(g)
    if fl is None or gl is None or not (fl.nondecreasing and gl.nondecreasing):
        return None
    t_lo, t_hi = q_bounds([t])
    t_lo, t_hi = t_lo[0], t_hi[0]
    u_lo_b, u_hi_b = q_bounds([u_max])
    u_max_lo, u_max_hi = u_lo_b[0], u_hi_b[0]

    # Candidate u values: g's breakpoints, f's breakpoints - t, 0, u_max.
    cand_lo = np.concatenate(
        (gl.S_lo, _down(fl.S_lo - t_hi), [0.0], [u_max_lo])
    )
    cand_hi = np.concatenate(
        (gl.S_hi, _up(fl.S_hi - t_lo), [0.0], [u_max_hi])
    )
    feas_certain = (cand_lo >= 0.0) & (cand_hi <= u_max_lo)
    feas_possible = (cand_hi >= 0.0) & (cand_lo <= u_max_hi)
    tu_lo = _down(t_lo + cand_lo)
    tu_hi = _up(t_hi + cand_hi)
    fv_lo, fv_hi = fl.eval_bounds(np.maximum(tu_lo, 0.0), tu_hi)
    gv_lo, gv_hi = gl.eval_bounds(np.maximum(cand_lo, 0.0), cand_hi)
    d_lo = _down(fv_lo - gv_hi)
    d_hi = _up(fv_hi - gv_lo)
    # Paired left-limit variants (u > 0): both arguments from the left.
    fll_lo, fll_hi = fl.llim_bounds(np.maximum(tu_lo, 0.0), tu_hi)
    gll_lo, gll_hi = gl.llim_bounds(np.maximum(cand_lo, 0.0), cand_hi)
    l_lo = _down(fll_lo - gll_hi)
    l_hi = _up(fll_hi - gll_lo)
    pos_possible = cand_hi > 0.0
    lo = np.concatenate((d_lo, l_lo))
    hi = np.concatenate((d_hi, l_hi))
    certain = np.concatenate((feas_certain, feas_certain & (cand_lo > 0.0)))
    possible = np.concatenate((feas_possible, feas_possible & pos_possible))
    certain &= np.isfinite(lo)
    possible &= np.isfinite(hi)
    # Max screen: survivors are possibly-feasible candidates whose upper
    # bound reaches the best certainly-feasible lower bound.
    if certain.any():
        thresh = np.max(lo[certain])
        survivors = np.flatnonzero(possible & (hi >= thresh))
    else:
        survivors = np.flatnonzero(possible)
    total = len(lo)
    perf.record("kernel.screen_hits", total - len(survivors))
    if len(survivors) > 1:
        perf.record("kernel.exact_fallbacks", len(survivors) - 1)
    m = gl.n + fl.n + 2
    g_bps = [s.start for s in g.segments]
    f_bps = [s.start for s in f.segments]
    best: Optional[Q] = None
    seen = set()
    for idx in survivors:
        idx = int(idx)
        base = idx % m
        left = idx >= m
        if base < gl.n:
            u = g_bps[base]
        elif base < gl.n + fl.n:
            u = f_bps[base - gl.n] - t
        elif base == gl.n + fl.n:
            u = Q(0)
        else:
            u = u_max
        if not (0 <= u <= u_max):
            continue
        if left and u == 0:
            continue
        key = (u, left)
        if key in seen:
            continue
        seen.add(key)
        if left:
            val = f.left_limit(t + u) - g.left_limit(u)
        else:
            val = f.at(t + u) - g.at(u)
        if best is None or val > best:
            best = val
    return best


# ----------------------------------------------------------------------
# Fused operation pipelines (chain-level memo + shared lowerings)
# ----------------------------------------------------------------------

def screened_delay_backlog(
    beta, times: Sequence, works: Sequence,
    group_ids: Sequence[int], n_groups: int,
):
    """Fused delay + backlog sweep over one request frontier.

    The two frontier maximisations consume the same ``(time, work)``
    tuples against the same service curve; running them through one
    call shares the lowering of *beta* **and** the certified interval
    bounds of the rational tuple coordinates (one :func:`q_bounds`
    pass over each array instead of two — for a 10k-tuple frontier
    that rational-to-float lowering is a measurable slice of the
    sweep).  Each half keeps its exact strict-improvement semantics.

    Returns ``(delay_result, backlog_result)`` in the two screens'
    native contract shapes, or None when the screen is unavailable.
    """
    gl = lowered(beta)
    if gl is None or not gl.nondecreasing:
        return None
    perf.record("kernel.fused_sweeps")
    w_bounds = q_bounds(works)
    t_bounds = q_bounds(times)
    d = screened_pinv_delay_groups(
        beta, times, works, group_ids, n_groups,
        w_bounds=w_bounds, o_bounds=t_bounds,
    )
    b = screened_backlog_max(
        beta, times, works, w_bounds=w_bounds, t_bounds=t_bounds
    )
    return d, b


def fused_deconv_hdev(f, g, backend: Optional[str] = None):
    """Fused ``deconv -> hdev`` chain of one greedy processing component.

    Computes the GPC bound triple ``(delay, backlog, output)`` for an
    arrival *f* on a service *g* with every stage threading the same
    lowered interval arrays (the per-curve lowering cache guarantees
    one lowering per chain) and one chain-level memo entry replacing
    three per-op lookups.  The backlog uses the deconvolution stage's
    screened point evaluation at ``t = 0``: ``sup_t (f - g)(t)`` equals
    ``sup_u f(0+u) - g(u)`` over the same exhaustive candidate set (the
    union of both curves' breakpoints with paired left limits, plus the
    interval ends), so re-screening with exact Fractions happens only
    at the final comparison and the value is bit-identical to
    :func:`~repro.minplus.deviation.vertical_deviation`.

    Returns None when the fused path is unavailable (exact dispatch for
    this operand size, no NumPy, or non-monotone inputs) — callers run
    the unfused three-op path, which produces the same results.
    """
    n = max(len(f.segments), len(g.segments))
    if backend_mod.op_backend("deconv", n, backend) != "hybrid":
        return None
    fl = lowered(f)
    gl = lowered(g)
    if fl is None or gl is None:
        return None
    if not (fl.nondecreasing and gl.nondecreasing):
        return None
    key = ("gpc_chain", f.interned(), g.interned())
    hit = op_cache_get(key)
    if hit is not None:
        return hit
    perf.record("kernel.fused_chains")
    from repro._numeric import INF
    from repro.minplus.convolution import min_plus_deconv
    from repro.minplus.deviation import (
        horizontal_deviation,
        vertical_deviation,
    )

    delay = horizontal_deviation(f, g, backend=backend)
    if f.tail_rate > g.tail_rate:
        backlog = INF
    else:
        u_max = max(f.last_breakpoint, g.last_breakpoint)
        backlog = deconv_point_value_screened(f, g, Q(0), u_max)
        if backlog is None:  # pragma: no cover - screens gated above
            backlog = vertical_deviation(f, g)
    output = min_plus_deconv(f, g, on_dip="fill", backend=backend)
    result = (delay, backlog, output)
    op_cache_put(key, result)
    return result


def fused_conv_hdev(alpha, betas, backend: Optional[str] = None):
    """Fused ``conv-fold -> hdev`` chain (pay-bursts-only-once delay).

    Folds the tandem services with min-plus convolution and takes the
    horizontal deviation of *alpha* against the fold, under one
    chain-level memo entry keyed by every curve in the chain — repeated
    flows over the same tandem (the ``analyze_chains`` fan-out pattern)
    replay the entire pipeline from one lookup.  Stages share lowered
    arrays through the per-curve cache; the fold keeps the strict
    ``on_dip="raise"`` policy of
    :func:`~repro.rtc.network.end_to_end_service`, so errors and values
    are bit-identical to the unfused serial path.

    Returns ``(delay, e2e_curve)`` or None when the fused path is
    unavailable.
    """
    betas = list(betas)
    if not betas or not AVAILABLE:
        return None
    n = max(
        len(alpha.segments), max(len(b.segments) for b in betas)
    )
    if backend_mod.op_backend("hdev", n, backend) != "hybrid":
        return None
    key = ("chain_e2e", alpha.interned()) + tuple(
        b.interned() for b in betas
    )
    hit = op_cache_get(key)
    if hit is not None:
        return hit
    perf.record("kernel.fused_chains")
    from repro.minplus.convolution import min_plus_conv
    from repro.minplus.deviation import horizontal_deviation

    acc = betas[0]
    for b in betas[1:]:
        acc = min_plus_conv(acc, b, on_dip="raise", backend=backend)
    delay = horizontal_deviation(alpha, acc, backend=backend)
    result = (delay, acc)
    op_cache_put(key, result)
    return result
