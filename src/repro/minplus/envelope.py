"""Lower/upper envelopes of collections of affine pieces.

Min-plus convolution and deconvolution of piecewise-linear curves reduce to
computing the lower (resp. upper) envelope of a collection of *closed*
affine pieces.  This module implements that computation by divide-and-
conquer merging of partial piecewise-linear functions, which keeps the
total cost near ``O(N log N)`` in the number of pieces.

Pieces are closed intervals ``[lo, hi]`` carrying an affine function; a
*degenerate* piece with ``lo == hi`` represents a single point value and is
used to preserve exact point information (attained limits at jumps) through
the merge.  The final conversion to right-continuous curve segments applies
a *dip policy* when the exact envelope value at an isolated point cannot be
represented by right-continuous segments:

* ``"fill"`` — drop the isolated value (sound when the result is used as an
  *upper* bound, e.g. arrival curves);
* ``"raise"`` — raise :class:`~repro.errors.CurveError` (used when the
  result must be a *lower* bound, e.g. service curves; continuous inputs
  never trigger it).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro._numeric import Q
from repro.errors import CurveError
from repro.minplus.segment import Segment

__all__ = ["Piece", "envelope", "envelope_to_segments"]


@dataclass(frozen=True)
class Piece:
    """A closed affine piece: ``f(t) = value + slope*(t - lo)`` on ``[lo, hi]``."""

    lo: Fraction
    hi: Fraction
    value: Fraction
    slope: Fraction

    def value_at(self, t: Q) -> Fraction:
        return self.value + self.slope * (t - self.lo)

    @property
    def degenerate(self) -> bool:
        return self.lo == self.hi

    def clipped(self, lo: Q, hi: Q) -> Optional["Piece"]:
        """This piece restricted to ``[lo, hi]``, or None if disjoint."""
        new_lo = max(self.lo, lo)
        new_hi = min(self.hi, hi)
        if new_lo > new_hi:
            return None
        return Piece(new_lo, new_hi, self.value_at(new_lo), self.slope)


def envelope(pieces: Sequence[Piece], lower: bool = True) -> List[Piece]:
    """Envelope (lower if *lower*, else upper) of *pieces*.

    Returns a sorted list of non-overlapping pieces (degenerate pieces mark
    isolated extremal point values at shared endpoints); their union domain
    equals the union of the inputs' domains.
    """
    items = [p for p in pieces if p.lo <= p.hi]
    if not items:
        return []
    # Divide and conquer: merging balanced halves keeps each piece passing
    # through O(log N) merges.
    return _dc(items, lower)


def _dc(items: List[Piece], lower: bool) -> List[Piece]:
    if len(items) == 1:
        return list(items)
    mid = len(items) // 2
    left = _dc(items[:mid], lower)
    right = _dc(items[mid:], lower)
    return _merge(left, right, lower)


def _better(a: Q, b: Q, lower: bool) -> bool:
    """True if value *a* beats value *b* for this envelope direction."""
    return a < b if lower else a > b


def _merge(xs: List[Piece], ys: List[Piece], lower: bool) -> List[Piece]:
    """Envelope of two partial PWL functions, each given as sorted,
    non-overlapping piece lists."""
    events: List[Q] = []
    for p in xs:
        events.append(p.lo)
        events.append(p.hi)
    for p in ys:
        events.append(p.lo)
        events.append(p.hi)
    events = sorted(set(events))
    out: List[Piece] = []

    def emit(piece: Piece) -> None:
        _append_coalesced(out, piece, lower)

    xi = yi = 0
    for k, a in enumerate(events):
        b = events[k + 1] if k + 1 < len(events) else None
        # Advance piece cursors past intervals ending before a.
        while xi < len(xs) and xs[xi].hi < a:
            xi += 1
        while yi < len(ys) and ys[yi].hi < a:
            yi += 1
        # Point handling at event a: every piece whose closed domain
        # contains a contributes its point value; the best survives.
        point_vals = []
        for arr, idx in ((xs, xi), (ys, yi)):
            j = idx
            while j < len(arr) and arr[j].lo <= a:
                if arr[j].hi >= a:
                    point_vals.append(arr[j].value_at(a))
                j += 1
        if point_vals:
            best = point_vals[0]
            for v in point_vals[1:]:
                if _better(v, best, lower):
                    best = v
            emit(Piece(a, a, best, Q(0)))
        if b is None:
            break
        # Interval handling on (a, b): at most one piece of each side
        # covers the open interval (pieces are non-overlapping and events
        # include all endpoints).
        px = _covering(xs, xi, a, b)
        py = _covering(ys, yi, a, b)
        if px is None and py is None:
            continue
        if px is None or py is None:
            winner = px if py is None else py
            emit(Piece(a, b, winner.value_at(a), winner.slope))
            continue
        _merge_interval(px, py, a, b, lower, emit)
    return out


def _covering(arr: List[Piece], idx: int, a: Q, b: Q) -> Optional[Piece]:
    """The piece of *arr* (searching from *idx*) covering ``[a, b]``."""
    j = idx
    while j < len(arr) and arr[j].lo <= a:
        if arr[j].hi >= b and arr[j].lo < arr[j].hi:
            return arr[j]
        j += 1
    return None


def _merge_interval(px: Piece, py: Piece, a: Q, b: Q, lower: bool, emit) -> None:
    """Envelope of two affine pieces both covering ``[a, b]``."""
    vx_a, vy_a = px.value_at(a), py.value_at(a)
    vx_b, vy_b = px.value_at(b), py.value_at(b)
    x_first = _better(vx_a, vy_a, lower) or (
        vx_a == vy_a and not _better(py.slope, px.slope, lower)
    )
    first, second = (px, py) if x_first else (py, px)
    fa, sa = (vx_a, vy_a) if x_first else (vy_a, vx_a)
    fb, sb = (vx_b, vy_b) if x_first else (vy_b, vx_b)
    if _better(sb, fb, lower):
        # Crossing strictly inside (a, b).
        x = a + (sa - fa) / (first.slope - second.slope)
        emit(Piece(a, x, first.value_at(a), first.slope))
        emit(Piece(x, b, second.value_at(x), second.slope))
    else:
        emit(Piece(a, b, first.value_at(a), first.slope))


def _append_coalesced(out: List[Piece], piece: Piece, lower: bool) -> None:
    """Append *piece*, merging with the previous piece when collinear and
    dropping redundant degenerate point pieces."""
    while out:
        prev = out[-1]
        if piece.degenerate:
            if prev.hi == piece.lo:
                prev_v = prev.value_at(piece.lo)
                if not _better(piece.value, prev_v, lower):
                    return  # point value carries no extra information
            break
        if prev.degenerate and prev.lo == piece.lo:
            # A degenerate point at the start of a full piece is redundant
            # unless it strictly beats the piece's own start value.
            if not _better(prev.value, piece.value, lower):
                out.pop()
                continue
            break
        if (
            prev.hi == piece.lo
            and prev.slope == piece.slope
            and prev.value_at(piece.lo) == piece.value
        ):
            out[-1] = Piece(prev.lo, piece.hi, prev.value, prev.slope)
            return
        break
    out.append(piece)


def envelope_to_segments(
    pieces: Sequence[Piece], cap: Q, on_dip: str = "raise"
) -> List[Segment]:
    """Convert an envelope on ``[0, cap]`` to right-continuous segments.

    Args:
        pieces: Sorted envelope pieces covering ``[0, cap]`` contiguously.
        cap: Right end of the requested domain.
        on_dip: Policy when an isolated point value (degenerate piece, or a
            jump whose exact point value is not representable by
            right-continuous segments) would be lost: ``"fill"`` drops the
            point value, ``"raise"`` raises :class:`CurveError`.

    Raises:
        CurveError: on gaps in coverage, or on an unrepresentable isolated
            point value with ``on_dip="raise"``.
    """
    if on_dip not in ("fill", "raise"):
        raise ValueError(f"on_dip must be 'fill' or 'raise', got {on_dip!r}")
    full = [p for p in pieces if not p.degenerate and p.lo <= cap]
    points = [p for p in pieces if p.degenerate and p.lo <= cap]
    segs: List[Segment] = []
    cursor = Q(0)
    prev_limit: Optional[Q] = None  # left limit of the represented function
    for piece in full:
        if piece.lo > cursor:
            raise CurveError(
                f"envelope has a gap at [{cursor}, {piece.lo}) before {cap}"
            )
        clipped = piece.clipped(cursor, cap)
        if clipped is None or clipped.degenerate:
            continue
        segs.append(Segment(clipped.lo, clipped.value, clipped.slope))
        cursor = clipped.hi
        prev_limit = clipped.value_at(clipped.hi)
        if cursor >= cap:
            break
    if cursor < cap:
        raise CurveError(f"envelope does not cover [0, {cap}] (stops at {cursor})")
    if on_dip == "raise":
        _check_point_values(points, full, cap)
    return segs


def _check_point_values(
    points: Sequence[Piece], full: Sequence[Piece], cap: Q
) -> None:
    """Verify no isolated point value is lost by the segment representation.

    A degenerate piece at *p* is representable iff its value equals either
    the left limit or the value of a full piece at *p*.
    """
    for pt in points:
        if pt.lo > cap:
            continue
        ok = False
        for piece in full:
            if piece.lo <= pt.lo <= piece.hi and piece.value_at(pt.lo) == pt.value:
                ok = True
                break
        if not ok:
            raise CurveError(
                f"envelope has an unrepresentable isolated value "
                f"{pt.value} at t={pt.lo}"
            )
