"""Constructors for the standard curve zoo.

Staircase curves (the shape of request/demand bound functions of periodic
and structural workload) are *finitary*: exact jumps up to a caller-chosen
horizon, then the tight affine bound through the staircase corners.  The
``side`` parameter selects whether the tail must remain an upper bound
(arrival/request curves) or a lower bound (service curves).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro._numeric import Q, NumLike, as_q
from repro.errors import CurveDomainError
from repro.minplus.curve import Curve
from repro.minplus.segment import Segment

__all__ = [
    "zero",
    "constant",
    "affine",
    "token_bucket",
    "rate_latency",
    "staircase",
    "step",
    "from_points",
]


def zero() -> Curve:
    """The constant-zero curve."""
    return Curve([Segment(Q(0), Q(0), Q(0))])


def constant(value: NumLike) -> Curve:
    """The constant curve ``f(t) = value``."""
    return Curve([Segment(Q(0), as_q(value), Q(0))])


def affine(burst: NumLike, rate: NumLike) -> Curve:
    """The affine curve ``f(t) = burst + rate * t``."""
    return Curve([Segment(Q(0), as_q(burst), as_q(rate))])


def token_bucket(burst: NumLike, rate: NumLike) -> Curve:
    """Token-bucket arrival curve: 0 at ``t = 0``, then ``burst + rate*t``.

    This is the classical ``gamma_{r,b}`` curve of network calculus with
    the right-continuous convention: the jump to *burst* happens
    immediately after 0, so ``f(0) = burst`` here (a window of length 0
    may already contain the burst) which matches the request-bound-function
    convention used throughout this library.
    """
    return affine(burst, rate)


def rate_latency(rate: NumLike, latency: NumLike) -> Curve:
    """Rate-latency service curve ``beta_{R,T}(t) = R * max(0, t - T)``."""
    r, t = as_q(rate), as_q(latency)
    if r < 0 or t < 0:
        raise CurveDomainError("rate-latency needs rate >= 0 and latency >= 0")
    if t == 0:
        return Curve([Segment(Q(0), Q(0), r)])
    return Curve([Segment(Q(0), Q(0), Q(0)), Segment(t, Q(0), r)])


def step(height: NumLike, at_time: NumLike) -> Curve:
    """A single upward step of *height* at *at_time* (0 before)."""
    h, t0 = as_q(height), as_q(at_time)
    if t0 == 0:
        return constant(h)
    return Curve([Segment(Q(0), Q(0), Q(0)), Segment(t0, h, Q(0))])


def staircase(
    height: NumLike,
    period: NumLike,
    horizon: NumLike,
    offset: NumLike = 0,
    side: str = "upper",
) -> Curve:
    """Finitary periodic staircase.

    The exact function is ``f(t) = height * (floor((t - offset)/period) + 1)``
    for ``t >= offset`` and 0 before (an upward jump of *height* at
    ``offset, offset + period, offset + 2*period, ...``).  Jumps are
    materialised exactly up to *horizon*; beyond it the curve continues
    with the tight affine bound through the staircase corners:

    * ``side="upper"``: the line through the post-jump corners (curve is an
      upper bound of the exact staircase everywhere, exact on the jumps);
    * ``side="lower"``: the line through the pre-jump corners (lower bound).

    Args:
        height: Jump size (work per period), must be > 0.
        period: Distance between jumps, must be > 0.
        horizon: Time up to which the staircase is exact, must be >= 0.
        offset: Time of the first jump.
        side: ``"upper"`` or ``"lower"`` tail bound direction.
    """
    h, p, hz, off = as_q(height), as_q(period), as_q(horizon), as_q(offset)
    if h <= 0 or p <= 0:
        raise CurveDomainError("staircase needs height > 0 and period > 0")
    if hz < 0 or off < 0:
        raise CurveDomainError("staircase needs horizon >= 0 and offset >= 0")
    if side not in ("upper", "lower"):
        raise ValueError(f"side must be 'upper' or 'lower', got {side!r}")
    segs: List[Segment] = []
    if off > 0:
        segs.append(Segment(Q(0), Q(0), Q(0)))
    # Exact steps with jump times <= horizon.
    k = 0
    t = off
    while t <= hz:
        segs.append(Segment(t, h * (k + 1), Q(0)))
        k += 1
        t = off + k * p
    rate = h / p
    next_jump = off + k * p
    if side == "upper":
        # Line through post-jump corners: value h*(k+1) at t = off + k*p.
        # Exactness holds on [0, next_jump) >= [0, horizon]; beyond, the
        # affine tail upper-bounds the staircase and touches it at corners.
        if k == 0 and off == 0:
            return Curve([Segment(Q(0), h, rate)])
        segs.append(Segment(next_jump, h * (k + 1), rate))
        return Curve(segs)
    # Lower bound: line through pre-jump corners: value h*k at t = off + k*p.
    segs.append(Segment(next_jump, h * k, rate))
    return Curve(segs)


def from_points(
    points: Sequence[Tuple[NumLike, NumLike]], tail_rate: NumLike
) -> Curve:
    """Continuous piecewise-linear curve through *points*, then affine tail.

    Args:
        points: ``(t, value)`` pairs with strictly increasing times; the
            first time must be 0.  Consecutive points are joined linearly.
        tail_rate: Slope after the last point.
    """
    if not points:
        raise CurveDomainError("from_points needs at least one point")
    pts = [(as_q(t), as_q(v)) for t, v in points]
    if pts[0][0] != 0:
        raise CurveDomainError("first point must be at t = 0")
    segs: List[Segment] = []
    for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
        if t1 <= t0:
            raise CurveDomainError("point times must be strictly increasing")
        segs.append(Segment(t0, v0, (v1 - v0) / (t1 - t0)))
    t_last, v_last = pts[-1]
    segs.append(Segment(t_last, v_last, as_q(tail_rate)))
    return Curve(segs)
