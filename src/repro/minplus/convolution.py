"""Exact min-plus convolution and deconvolution of ultimately-affine curves.

For ultimately-affine curves ``f`` (affine beyond ``T_f`` with rate ``r_f``)
and ``g`` (beyond ``T_g``, rate ``r_g``):

* ``(f (*) g)(t) = inf_{0<=s<=t} f(s) + g(t-s)`` is ultimately affine with
  rate ``min(r_f, r_g)`` — beyond ``T_f + T_g`` when the tail rates agree,
  and beyond the crossing of the two asymptotic affine families otherwise
  (see :func:`_ultimate_horizon`);
* ``(f (/) g)(t) = sup_{u>=0} f(t+u) - g(u)`` is finite iff ``r_f <= r_g``
  and is then ultimately affine beyond ``T_f`` with rate ``r_f``; the
  supremum is attained for ``u <= max(T_f, T_g)``.

Both reduce to envelopes of the closed affine pieces obtained from pairs of
segments; see :mod:`repro.minplus.envelope` for the dip policies.
"""

from __future__ import annotations

from typing import List, Optional

from repro._numeric import Q
from repro.errors import CurveError
from repro.minplus import backend as backend_mod
from repro.minplus import kernels
from repro.minplus.curve import Curve
from repro.minplus.envelope import Piece, envelope, envelope_to_segments
from repro.minplus.segment import Segment

__all__ = ["min_plus_conv", "min_plus_deconv"]


def _closed_segments(curve: Curve, cap: Q) -> List[Piece]:
    """The curve's segments as closed pieces, the tail clipped at *cap*."""
    pieces: List[Piece] = []
    starts = curve.breakpoints()
    for i, seg in enumerate(curve.segments):
        hi = starts[i + 1] if i + 1 < len(starts) else cap
        if seg.start > cap:
            break
        hi = min(hi, cap)
        pieces.append(Piece(seg.start, hi, seg.value, seg.slope))
    return pieces


def conv_point_value(f: Curve, g: Curve, t: Q) -> Q:
    """Exact ``inf { f(s) + g(t-s) : 0 <= s <= t }`` at one point.

    Along the constraint ``s + u = t`` the only admissible limits are
    one-sided *pairs*: when ``s`` approaches a breakpoint from the left,
    ``u`` approaches its counterpart from the right (taking the
    right-continuous value).  Within regions where both arguments stay on
    one affine piece the objective is affine in ``s``, so the infimum is
    attained at the region boundaries enumerated here.
    """
    candidates: List[Q] = []
    for s in f.breakpoints():
        if 0 <= s <= t:
            candidates.append(f.at(s) + g.at(t - s))
            if s > 0:
                candidates.append(f.left_limit(s) + g.at(t - s))
    for u in g.breakpoints():
        if 0 <= u <= t:
            candidates.append(f.at(t - u) + g.at(u))
            if u > 0:
                candidates.append(f.at(t - u) + g.left_limit(u))
    return min(candidates)


def _correct_breakpoints(
    segs: List[Segment],
    point_value,
    lower: bool,
    on_dip: str,
) -> List[Segment]:
    """Replace each segment's start value by the exact point value.

    Fixes the isolated *corner artefacts* of the closed-segment Minkowski
    construction (which pairs two left limits that the constraint
    ``s + u = t`` cannot realise simultaneously).  When the exact value
    disagrees in the *unsound* direction (an unattained extremum that
    right-continuous segments cannot represent), the dip policy applies:
    ``"fill"`` keeps the conservative segment value, ``"raise"`` errors.
    """
    out: List[Segment] = []
    for seg in segs:
        exact = point_value(seg.start)
        if exact == seg.value:
            out.append(seg)
        elif (exact > seg.value) == lower:
            # Corner artefact: the envelope under/over-shot at the point
            # in the direction the true extremum forbids; the exact value
            # is the right-continuous one.
            out.append(Segment(seg.start, exact, seg.slope))
        else:
            # Genuine unattained extremum at an isolated point.
            if on_dip == "raise":
                raise CurveError(
                    f"unattained extremum {exact} at t={seg.start} cannot "
                    "be represented by right-continuous segments"
                )
            out.append(seg)
    return out


def _transient_candidates(curve: Curve):
    """(position, value) pairs spanning the curve's transient: values and
    left limits at every breakpoint plus the value at the tail start."""
    out = []
    for t in curve.breakpoints():
        out.append((t, curve.at(t)))
        if t > 0:
            out.append((t, curve.left_limit(t)))
    return out


def _ultimate_horizon(f: Curve, g: Curve, lower: bool) -> Q:
    """Where ``f (*) g`` (resp. the max-plus dual) becomes truly affine.

    Beyond ``T_f + T_g`` the (de)composition is the min (resp. max) of two
    affine families: *f-transient + g-tail* (slope ``r_g``) and *f-tail +
    g-transient* (slope ``r_f``).  With distinct rates the slower (resp.
    steeper) line only takes over at their crossing, which can lie far
    beyond ``T_f + T_g`` — the returned horizon covers it.
    """
    h0 = f.last_breakpoint + g.last_breakpoint
    rf, rg = f.tail_rate, g.tail_rate
    if rf == rg:
        return h0
    pick = min if lower else max
    # Family A: s in f's transient, t - s in g's tail -> slope rg.
    c_a = pick(v - rg * s for s, v in _transient_candidates(f))
    c_a += g.at(g.last_breakpoint) - rg * g.last_breakpoint
    # Family B: u in g's transient, t - u in f's tail -> slope rf.
    c_b = pick(v - rf * u for u, v in _transient_candidates(g))
    c_b += f.at(f.last_breakpoint) - rf * f.last_breakpoint
    # Crossing of c_a + rg*t and c_b + rf*t.
    crossing = (c_a - c_b) / (rf - rg)
    return max(h0, crossing)


def min_plus_conv(
    f: Curve, g: Curve, on_dip: str = "fill", backend: Optional[str] = None
) -> Curve:
    """Min-plus convolution ``f (*) g``.

    Args:
        f, g: Ultimately-affine curves.
        on_dip: Dip policy for isolated unattained infima (see
            :func:`~repro.minplus.envelope.envelope_to_segments`).  The
            default ``"fill"`` is sound when the result is used as an upper
            bound; continuous inputs never produce dips, so either policy
            is exact for service-curve composition.
        backend: Kernel backend override (see :mod:`repro.minplus.backend`).
            The ``"hybrid"`` backend memoizes on curve fingerprints,
            prunes certifiably dominated segment pairs before the exact
            envelope, and screens the exact point evaluations; the
            resulting curve is identical to the ``"exact"`` backend's.
            ``"auto"`` (the default) picks between the two per call from
            the calibrated cost model and the operand segment counts.
    """
    mode = backend_mod.op_backend(
        "conv", max(len(f.segments), len(g.segments)), backend
    )
    hybrid = mode == "hybrid"
    if hybrid:
        memo_key = ("conv", f.interned(), g.interned(), on_dip)
        hit = kernels.op_cache_get(memo_key)
        if hit is not None:
            return hit
    h0 = _ultimate_horizon(f, g, lower=True)
    tail_rate = min(f.tail_rate, g.tail_rate)
    if h0 == 0:
        # Both curves affine: conv(t) = f(0) + g(0) + min(rf, rg) * t.
        return Curve([Segment(Q(0), f.at(0) + g.at(0), tail_rate)])
    fp = _closed_segments(f, h0)
    gp = _closed_segments(g, h0)
    keep = None
    if hybrid and on_dip == "fill":
        # Sound domination pruning: dropped pairs provably never supply
        # the lower envelope, so the computed curve is unchanged.  (The
        # "raise" policy walks every piece's event points, so it keeps
        # the full pair set.)
        keep = kernels.conv_prune_mask(f, g, fp, gp, h0)
    pieces: List[Piece] = []
    for i, a in enumerate(fp):
        row = keep[i] if keep is not None else None
        for j, b in enumerate(gp):
            if row is not None and not row[j]:
                continue
            pieces.extend(_conv_pair(a, b, h0))
    env = envelope(pieces, lower=True)
    segs = envelope_to_segments(env, h0, on_dip="fill")
    if hybrid:
        def point_value(t, _f=f, _g=g):
            v = kernels.conv_point_value_screened(_f, _g, t)
            return v if v is not None else conv_point_value(_f, _g, t)
    else:
        point_value = lambda t: conv_point_value(f, g, t)
    # Exact affine tail beyond T_f + T_g; the joint value must be the
    # exact point evaluation (the envelope's left limit at h0 can differ
    # at an isolated point, and clipped tail pieces may be degenerate).
    segs = [s for s in segs if s.start < h0]
    segs.append(Segment(h0, point_value(h0), tail_rate))
    segs = _correct_breakpoints(segs, point_value, lower=True, on_dip=on_dip)
    result = Curve(segs)
    if on_dip == "raise":
        _verify_point_exactness(result, pieces, point_value, h0, lower=True)
    if hybrid:
        kernels.op_cache_put(memo_key, result)
    return result


def _verify_point_exactness(
    result: Curve, pieces: List[Piece], point_value, cap: Q, lower: bool
) -> None:
    """For the strict policy: the represented curve must take the exact
    extremum value at every envelope event point (isolated unattained
    extrema inside segments are unrepresentable -> error)."""
    events = set()
    for p in pieces:
        if p.lo <= cap:
            events.add(p.lo)
        if p.hi <= cap:
            events.add(p.hi)
    for t in sorted(events):
        exact = point_value(t)
        cur = result.at(t)
        if (cur > exact) if lower else (cur < exact):
            raise CurveError(
                f"unattained extremum {exact} at t={t} cannot be "
                "represented by right-continuous segments"
            )


def _conv_pair(a: Piece, b: Piece, cap: Q) -> List[Piece]:
    """Pieces of ``inf { a(s) + b(u) : s + u = t }`` for one segment pair.

    The Minkowski sum of two affine pieces traverses the smaller-slope
    piece first: a convex two-slope function on ``[a.lo+b.lo, a.hi+b.hi]``.
    """
    lo = a.lo + b.lo
    if lo > cap:
        return []
    first, second = (a, b) if a.slope <= b.slope else (b, a)
    v0 = a.value + b.value
    mid = lo + (first.hi - first.lo)
    hi = mid + (second.hi - second.lo)
    out: List[Piece] = []
    p1 = Piece(lo, min(mid, cap), v0, first.slope).clipped(Q(0), cap)
    if p1 is not None:
        out.append(p1)
    if hi > mid and mid <= cap:
        v_mid = v0 + first.slope * (mid - lo)
        p2 = Piece(mid, min(hi, cap), v_mid, second.slope).clipped(Q(0), cap)
        if p2 is not None:
            out.append(p2)
    return out


def min_plus_deconv(
    f: Curve, g: Curve, on_dip: str = "raise", backend: Optional[str] = None
) -> Curve:
    """Min-plus deconvolution ``f (/) g``.

    Args:
        f, g: Ultimately-affine curves.
        on_dip: Dip policy for isolated unattained suprema.
        backend: Kernel backend override (see :mod:`repro.minplus.backend`);
            ``"hybrid"`` results are identical to ``"exact"``, and
            ``"auto"`` dispatches between them from the cost model (tiny
            curves route to the exact path, whose fixed costs are lower).

    Raises:
        CurveError: if ``f.tail_rate > g.tail_rate`` (the supremum is
            infinite), or on an unrepresentable isolated supremum with
            ``on_dip="raise"``.
    """
    if f.tail_rate > g.tail_rate:
        raise CurveError(
            "deconvolution diverges: long-run rate of f exceeds that of g "
            f"({f.tail_rate} > {g.tail_rate})"
        )
    mode = backend_mod.op_backend(
        "deconv", max(len(f.segments), len(g.segments)), backend
    )
    hybrid = mode == "hybrid"
    if hybrid:
        memo_key = ("deconv", f.interned(), g.interned(), on_dip)
        hit = kernels.op_cache_get(memo_key)
        if hit is not None:
            return hit
    u_max = max(f.last_breakpoint, g.last_breakpoint)
    t_max = f.last_breakpoint  # result is affine with rate r_f beyond T_f
    fp = _closed_segments(f, t_max + u_max + 1)
    gp = _closed_segments(g, u_max)
    keep = None
    if hybrid and on_dip == "fill":
        # Dual of the convolution pruning: dropped pairs provably stay
        # below the upper envelope everywhere ("raise" again needs the
        # full pair set for its event walk).
        keep = kernels.deconv_prune_mask(f, g, fp, gp, u_max, t_max)
    pieces: List[Piece] = []
    for i, a in enumerate(fp):
        row = keep[i] if keep is not None else None
        for j, b in enumerate(gp):
            if row is not None and not row[j]:
                continue
            pieces.extend(_deconv_pair(a, b, t_max))
    env = envelope(pieces, lower=False)
    segs = envelope_to_segments(env, t_max, on_dip="fill") if t_max > 0 else []
    if t_max == 0:
        # f affine: sup_u [f(0) + rf*(t+u) - g(u)] = f(t) + sup_u [rf*u - g(u)].
        boost = _sup_rate_minus(f.tail_rate, gp)
        return Curve([Segment(Q(0), f.at(0) + boost, f.tail_rate)])
    if hybrid:
        def point_value(t, _f=f, _g=g, _u=u_max):
            v = kernels.deconv_point_value_screened(_f, _g, t, _u)
            return v if v is not None else deconv_point_value(_f, _g, t, _u)
    else:
        point_value = lambda t: deconv_point_value(f, g, t, u_max)
    segs = [s for s in segs if s.start < t_max]
    segs.append(Segment(t_max, point_value(t_max), f.tail_rate))
    segs = _correct_breakpoints(segs, point_value, lower=False, on_dip=on_dip)
    result = Curve(segs)
    if on_dip == "raise":
        _verify_point_exactness(result, pieces, point_value, t_max, lower=False)
    if hybrid:
        kernels.op_cache_put(memo_key, result)
    return result


def deconv_point_value(f: Curve, g: Curve, t: Q, u_max: Q) -> Q:
    """Exact ``sup { f(t+u) - g(u) : u >= 0 }`` at one point.

    Valid limit pairs move both arguments together (``u -> u0-`` takes
    both left limits); the supremum beyond ``u_max`` is nonincreasing,
    so the candidate set below is exhaustive.
    """
    candidates: List[Q] = []
    us = set()
    for u in g.breakpoints():
        if 0 <= u <= u_max:
            us.add(u)
    for bp in f.breakpoints():
        u = bp - t
        if 0 <= u <= u_max:
            us.add(u)
    us.add(Q(0))
    us.add(u_max)
    for u in us:
        candidates.append(f.at(t + u) - g.at(u))
        if u > 0:
            candidates.append(f.left_limit(t + u) - g.left_limit(u))
    return max(candidates)


def _sup_rate_minus(rate: Q, g_pieces: List[Piece]) -> Q:
    """``sup_u (rate*u - g(u))`` over the closed pieces of g."""
    best = None
    for p in g_pieces:
        for u in (p.lo, p.hi):
            v = rate * u - p.value_at(u)
            if best is None or v > best:
                best = v
    if best is None:
        raise CurveError("empty curve in deconvolution")
    return best


def _deconv_pair(a: Piece, b: Piece, cap: Q) -> List[Piece]:
    """Pieces of ``sup { a(t+u) - b(u) : u in [b.lo,b.hi], t+u in [a.lo,a.hi] }``.

    Within the cell the objective is affine in ``u`` with slope
    ``a.slope - b.slope``; the maximiser is therefore one of the moving
    interval endpoints, giving at most two affine pieces in ``t``.
    """
    t_lo = a.lo - b.hi
    t_hi = a.hi - b.lo
    if t_hi < 0 or t_lo > cap:
        return []
    out: List[Piece] = []

    def add(lo: Q, hi: Q, value_at_lo: Q, slope: Q) -> None:
        p = Piece(lo, hi, value_at_lo, slope).clipped(Q(0), cap)
        if p is not None:
            out.append(p)

    if a.slope >= b.slope:
        # Maximiser u* = min(b.hi, a.hi - t).
        # For t <= a.hi - b.hi: u* = b.hi -> phi(t) = a(t + b.hi) - b(b.hi).
        split = a.hi - b.hi
        if split >= t_lo:
            v = a.value_at(t_lo + b.hi) - b.value_at(b.hi)
            add(t_lo, split, v, a.slope)
        # For t >= split: u* = a.hi - t -> phi(t) = a(a.hi) - b(a.hi - t).
        lo2 = max(t_lo, split)
        if t_hi >= lo2:
            v = a.value_at(a.hi) - b.value_at(a.hi - lo2)
            add(lo2, t_hi, v, b.slope)
    else:
        # Maximiser u* = max(b.lo, a.lo - t).
        # For t <= a.lo - b.lo: u* = a.lo - t -> phi(t) = a(a.lo) - b(a.lo - t).
        split = a.lo - b.lo
        if split >= t_lo:
            v = a.value_at(a.lo) - b.value_at(a.lo - t_lo)
            add(t_lo, split, v, b.slope)
        # For t >= split: u* = b.lo -> phi(t) = a(t + b.lo) - b(b.lo).
        lo2 = max(t_lo, split)
        if t_hi >= lo2:
            v = a.value_at(lo2 + b.lo) - b.value_at(b.lo)
            add(lo2, t_hi, v, a.slope)
    return out


