"""Ultimately-affine piecewise-linear curves with exact rational arithmetic.

A :class:`Curve` is a total function ``f : [0, oo) -> Q`` given by a finite
sorted list of :class:`~repro.minplus.segment.Segment` objects.  Each
segment is valid on ``[start, next_start)``; the last one extends to
``+oo`` (the curve is *ultimately affine* with rate ``tail_rate``).
Curves are right-continuous; upward or downward jumps may occur at
breakpoints (the staircase request-bound functions of structural workload
are encoded as zero-slope segments with upward jumps).

Curves are immutable.  All operations return new, normalized curves.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import OrderedDict
from fractions import Fraction
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro import perf
from repro._numeric import Q, NumLike, as_q
from repro.errors import CurveDomainError, EmptyCurveError
from repro.minplus.segment import Segment

__all__ = ["Curve"]

#: Interning table: fingerprint -> equality-checked bucket of curves
#: (LRU, so long-running sweeps cannot grow it without bound).
_INTERN_CAP = 4096
_intern_table: "OrderedDict[int, List[Curve]]" = OrderedDict()


class Curve:
    """An ultimately-affine piecewise-linear function on ``[0, oo)``.

    Args:
        segments: Affine pieces with strictly increasing ``start`` values;
            the first must start at 0.  Redundant pieces (collinear
            continuations) are merged automatically.

    Raises:
        EmptyCurveError: if *segments* is empty.
        CurveDomainError: if the first segment does not start at 0 or the
            starts are not strictly increasing.
    """

    __slots__ = ("_segments", "_starts", "_fp", "_digest", "_lowered")

    def __init__(self, segments: Iterable[Segment]):
        segs = _normalize(list(segments))
        if not segs:
            raise EmptyCurveError("a curve needs at least one segment")
        if segs[0].start != 0:
            raise CurveDomainError(
                f"curve domain must start at 0, got {segs[0].start}"
            )
        self._segments: Tuple[Segment, ...] = tuple(segs)
        self._starts: List[Q] = [s.start for s in segs]
        self._fp: Optional[int] = None
        self._digest: Optional[str] = None
        self._lowered = None  # kernel-backend lowering cache (see kernels.py)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def segments(self) -> Tuple[Segment, ...]:
        """The normalized affine pieces of this curve."""
        return self._segments

    @property
    def tail(self) -> Segment:
        """The last (infinite) segment."""
        return self._segments[-1]

    @property
    def tail_rate(self) -> Fraction:
        """The long-run growth rate (slope of the infinite tail)."""
        return self._segments[-1].slope

    @property
    def last_breakpoint(self) -> Fraction:
        """Start of the infinite tail; the curve is affine beyond it."""
        return self._segments[-1].start

    def breakpoints(self) -> List[Fraction]:
        """Strictly increasing list of segment start points."""
        return list(self._starts)

    def _segment_index_at(self, t: Q) -> int:
        """Index of the segment whose half-open domain contains *t*."""
        return bisect.bisect_right(self._starts, t) - 1

    def at(self, t: NumLike) -> Fraction:
        """Value ``f(t)`` (right-continuous convention)."""
        tq = as_q(t)
        if tq < 0:
            raise CurveDomainError(f"curve evaluated at negative time {tq}")
        return self._segments[self._segment_index_at(tq)].value_at(tq)

    def __call__(self, t: NumLike) -> Fraction:
        return self.at(t)

    def left_limit(self, t: NumLike) -> Fraction:
        """Left limit ``f(t-)`` for ``t > 0``."""
        tq = as_q(t)
        if tq <= 0:
            raise CurveDomainError("left limit requires t > 0")
        idx = bisect.bisect_left(self._starts, tq) - 1
        if idx < 0:
            idx = 0
        return self._segments[idx].value_at(tq)

    def jump_at(self, t: NumLike) -> Fraction:
        """Size of the jump ``f(t) - f(t-)`` at *t* (0 if continuous)."""
        tq = as_q(t)
        if tq == 0:
            return Q(0)
        return self.at(tq) - self.left_limit(tq)

    def is_continuous(self) -> bool:
        """True iff the curve has no jump at any breakpoint."""
        return all(self.jump_at(t) == 0 for t in self._starts[1:])

    def is_nondecreasing(self) -> bool:
        """True iff the curve never decreases (slopes and jumps >= 0)."""
        if any(s.slope < 0 for s in self._segments):
            return False
        return all(self.jump_at(t) >= 0 for t in self._starts[1:])

    def is_nonnegative(self) -> bool:
        """True iff ``f(t) >= 0`` for every ``t >= 0``."""
        return self.inf_on(0, self.last_breakpoint) >= 0 and self.tail_rate >= 0

    def sup_on(self, a: NumLike, b: NumLike) -> Fraction:
        """Supremum of the curve on the closed interval ``[a, b]``.

        Jumps are taken into account: both the value and the left limit at
        interior breakpoints are candidates, so the result is the true
        supremum of the right-continuous function's closure on ``[a, b]``.
        """
        return self._extremum_on(a, b, max)

    def inf_on(self, a: NumLike, b: NumLike) -> Fraction:
        """Infimum of the curve on the closed interval ``[a, b]``."""
        return self._extremum_on(a, b, min)

    def _extremum_on(self, a: NumLike, b: NumLike, pick: Callable) -> Fraction:
        aq, bq = as_q(a), as_q(b)
        if aq < 0 or bq < aq:
            raise CurveDomainError(f"invalid interval [{aq}, {bq}]")
        candidates = [self.at(aq), self.at(bq)]
        if bq > aq:
            candidates.append(self.left_limit(bq))
        lo = bisect.bisect_right(self._starts, aq)
        hi = bisect.bisect_left(self._starts, bq)
        for t in self._starts[lo:hi]:
            candidates.append(self.at(t))
            if t > 0:
                candidates.append(self.left_limit(t))
        return pick(candidates)

    def sample(self, times: Iterable[NumLike]) -> List[Fraction]:
        """Values of the curve at each time in *times*."""
        return [self.at(t) for t in times]

    # ------------------------------------------------------------------
    # Pointwise arithmetic
    # ------------------------------------------------------------------

    def _aligned(self, other: "Curve") -> List[Q]:
        grid = sorted(set(self._starts) | set(other._starts))
        return grid

    def _combine(self, other: "Curve", op: Callable[[Q, Q], Q]) -> "Curve":
        """Pointwise combination where pieces never need splitting (+, -)."""
        segs = []
        for t in self._aligned(other):
            fa = self.at(t)
            ga = other.at(t)
            sa = self._segments[self._segment_index_at(t)].slope
            sb = other._segments[other._segment_index_at(t)].slope
            segs.append(Segment(t, op(fa, ga), op_slope(op, sa, sb)))
        return Curve(segs)

    def __add__(self, other: "Curve") -> "Curve":
        if not isinstance(other, Curve):
            return NotImplemented
        return self._combine(other, lambda a, b: a + b)

    def __sub__(self, other: "Curve") -> "Curve":
        if not isinstance(other, Curve):
            return NotImplemented
        return self._combine(other, lambda a, b: a - b)

    def __neg__(self) -> "Curve":
        return Curve(Segment(s.start, -s.value, -s.slope) for s in self._segments)

    def scale(self, factor: NumLike) -> "Curve":
        """Pointwise multiplication by a constant factor."""
        f = as_q(factor)
        return Curve(s.scaled(f) for s in self._segments)

    def vshift(self, dv: NumLike) -> "Curve":
        """The curve ``f(t) + dv``."""
        d = as_q(dv)
        return Curve(Segment(s.start, s.value + d, s.slope) for s in self._segments)

    def advance(self, dt: NumLike) -> "Curve":
        """The curve advanced by *dt*: ``g(t) = f(t + dt)``.

        The left counterpart of :meth:`hshift`; used e.g. to delay-shift
        request bounds into departure bounds.
        """
        d = as_q(dt)
        if d < 0:
            raise CurveDomainError("advance requires dt >= 0")
        if d == 0:
            return self
        idx = self._segment_index_at(d)
        carrier = self._segments[idx]
        segs = [Segment(Q(0), self.at(d), carrier.slope)]
        segs.extend(
            Segment(s.start - d, s.value, s.slope)
            for s in self._segments[idx + 1 :]
        )
        return Curve(segs)

    def hshift(self, dt: NumLike, fill: NumLike = 0) -> "Curve":
        """The curve delayed by *dt*: ``g(t) = f(t - dt)`` for ``t >= dt``.

        On ``[0, dt)`` the result is the constant *fill* (default 0).  With
        ``fill=0`` this is the effect of min-plus convolution with the
        burst-delay function used to delay arrival or service curves.
        """
        d = as_q(dt)
        if d < 0:
            raise CurveDomainError("hshift requires dt >= 0")
        if d == 0:
            return self
        segs = [Segment(Q(0), as_q(fill), Q(0))]
        segs.extend(s.shifted(d) for s in self._segments)
        return Curve(segs)

    # ------------------------------------------------------------------
    # Pointwise min / max (with crossing splits)
    # ------------------------------------------------------------------

    def minimum(self, other: "Curve") -> "Curve":
        """Pointwise minimum ``min(f, g)``."""
        return self._envelope(other, lower=True)

    def maximum(self, other: "Curve") -> "Curve":
        """Pointwise maximum ``max(f, g)``."""
        return self._envelope(other, lower=False)

    def _envelope(self, other: "Curve", lower: bool) -> "Curve":
        grid = self._aligned(other)
        segs: List[Segment] = []
        for i, t in enumerate(grid):
            end = grid[i + 1] if i + 1 < len(grid) else None
            fa, ga = self.at(t), other.at(t)
            sa = self._segments[self._segment_index_at(t)].slope
            sb = other._segments[other._segment_index_at(t)].slope
            first_is_f = (fa < ga) or (fa == ga and sa <= sb)
            if not lower:
                first_is_f = (fa > ga) or (fa == ga and sa >= sb)
            if first_is_f:
                v0, s0, v1, s1 = fa, sa, ga, sb
            else:
                v0, s0, v1, s1 = ga, sb, fa, sa
            segs.append(Segment(t, v0, s0))
            # Crossing strictly inside the interval flips the winner.
            if v0 != v1 or s0 != s1:
                if s0 != s1:
                    x = t + (v1 - v0) / (s0 - s1)
                    inside = x > t and (end is None or x < end)
                    crossing_matters = (s0 > s1) if lower else (s0 < s1)
                    if inside and crossing_matters:
                        segs.append(Segment(x, v1 + s1 * (x - t), s1))
        return Curve(segs)

    def nonneg(self) -> "Curve":
        """Pointwise maximum with the zero curve (``[f]^+``)."""
        zero = Curve([Segment(Q(0), Q(0), Q(0))])
        return self.maximum(zero)

    # ------------------------------------------------------------------
    # Monotone closures
    # ------------------------------------------------------------------

    def running_max(self) -> "Curve":
        """The nondecreasing upper closure ``g(t) = sup_{0<=s<=t} f(s)``."""
        segs: List[Segment] = []
        best = None
        for i, seg in enumerate(self._segments):
            end = self._starts[i + 1] if i + 1 < len(self._segments) else None
            v0 = seg.value
            if best is None:
                best = v0
            if v0 >= best:
                # Segment starts at or above the running max.
                if seg.slope >= 0:
                    segs.append(seg)
                    best = seg.value_at(end) if end is not None else None
                    if best is None:
                        return Curve(_normalize(segs))
                else:
                    # Rises then the plateau takes over immediately.
                    segs.append(Segment(seg.start, v0, Q(0)))
                    best = v0
            else:
                # Below the running max: plateau until (maybe) crossing.
                segs.append(Segment(seg.start, best, Q(0)))
                if seg.slope > 0:
                    x = seg.start + (best - v0) / seg.slope
                    if end is None or x < end:
                        segs.append(Segment(x, best, seg.slope))
                        best = seg.value_at(end) if end is not None else None
                        if best is None:
                            return Curve(_normalize(segs))
                    else:
                        best = max(best, seg.value_at(end))
                elif end is not None:
                    best = max(best, seg.value_at(end))
        if self.tail_rate < 0 and segs and segs[-1].slope < 0:  # pragma: no cover
            raise AssertionError("running_max produced a decreasing tail")
        return Curve(_normalize(segs))

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def fingerprint(self) -> int:
        """Structural hash of the normalized segment tuple (cached).

        Hashes the raw ``(numerator, denominator)`` integer pairs of every
        segment coefficient once, then reuses the value forever (curves
        are immutable) — so dict-keyed analysis caches stop re-hashing
        full :class:`~fractions.Fraction` tuples on every lookup.
        """
        fp = self._fp
        if fp is None:
            fp = hash(
                tuple(
                    (
                        s.start.numerator,
                        s.start.denominator,
                        s.value.numerator,
                        s.value.denominator,
                        s.slope.numerator,
                        s.slope.denominator,
                    )
                    for s in self._segments
                )
            )
            self._fp = fp
        return fp

    def digest(self) -> str:
        """Stable hex content digest of the normalized segments (cached).

        Unlike :meth:`fingerprint` — a Python ``hash`` meant for
        in-process dict keys — the digest is a SHA-256 over the exact
        decimal encoding of every coordinate, so it is stable across
        processes, Python versions and hash seeds.  It is what the
        persistent result cache (:mod:`repro.parallel.cache`) keys disk
        entries by.
        """
        dg = self._digest
        if dg is None:
            h = hashlib.sha256()
            for s in self._segments:
                h.update(f"{s.start}|{s.value}|{s.slope};".encode("ascii"))
            dg = h.hexdigest()
            self._digest = dg
        return dg

    def __reduce__(self):
        """Pickle as the bare segment tuple.

        Unpickling rebuilds the curve and re-interns it, so every copy a
        worker process receives maps back to one canonical object per
        structure — sharing the cached fingerprint and the kernel
        backend's lowered arrays instead of re-deriving them per copy.
        Derived state (``_fp``, ``_digest``, ``_lowered``) is therefore
        deliberately not shipped.
        """
        return (_unpickle_curve, (self._segments,))

    def interned(self) -> "Curve":
        """The canonical representative of this curve's structure.

        Structurally equal curves map to one shared object (LRU table,
        fingerprint-keyed with equality-checked buckets), so expensive
        per-curve derived state — the kernel backend's lowered arrays in
        particular — is computed once per *structure*, not once per
        object.
        """
        fp = self.fingerprint()
        bucket = _intern_table.get(fp)
        if bucket is None:
            perf.record("curve.intern_misses")
            _intern_table[fp] = [self]
            while len(_intern_table) > _INTERN_CAP:
                _intern_table.popitem(last=False)
                perf.record("curve.intern_evictions")
            return self
        _intern_table.move_to_end(fp)
        for canon in bucket:
            if canon is self:
                return self
            if canon._segments == self._segments:
                perf.record("curve.intern_hits")
                return canon
        perf.record("curve.intern_misses")
        bucket.append(self)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Curve):
            return NotImplemented
        if self is other:
            return True
        if self.fingerprint() != other.fingerprint():
            return False
        return self._segments == other._segments

    def __hash__(self) -> int:
        return self.fingerprint()

    def __repr__(self) -> str:
        pieces = ", ".join(
            f"({s.start}; {s.value}; {s.slope})" for s in self._segments[:6]
        )
        suffix = ", ..." if len(self._segments) > 6 else ""
        return f"Curve[{pieces}{suffix}]"

    def describe(self) -> str:
        """Multi-line human-readable description (for examples / CLI)."""
        lines = []
        for i, s in enumerate(self._segments):
            end = self._starts[i + 1] if i + 1 < len(self._segments) else "oo"
            lines.append(
                f"  [{s.start}, {end}): f(t) = {s.value} + {s.slope}*(t - {s.start})"
            )
        return "\n".join(lines)


def _unpickle_curve(segments: Tuple[Segment, ...]) -> Curve:
    """Rebuild a pickled curve and map it onto the canonical interned
    representative of its structure (see :meth:`Curve.__reduce__`)."""
    return Curve(segments).interned()


def clear_intern_table() -> None:
    """Drop every interned curve (per-process cache isolation).

    Used by :func:`repro.parallel.reset_process_caches` so jobs run with
    ``fresh_caches=True`` cannot observe lowered arrays or canonical
    objects left behind by earlier jobs in the same worker process.
    """
    _intern_table.clear()


def op_slope(op: Callable[[Q, Q], Q], sa: Q, sb: Q) -> Q:
    """Slope of the combined segment for linear ops (add/sub)."""
    return op(sa, sb)


def _normalize(segments: List[Segment]) -> List[Segment]:
    """Sort, validate strict ordering, and merge collinear continuations."""
    segments = sorted(segments, key=lambda s: s.start)
    for a, b in zip(segments, segments[1:]):
        if a.start == b.start:
            raise CurveDomainError(f"duplicate segment start at {a.start}")
    merged: List[Segment] = []
    for seg in segments:
        if merged:
            prev = merged[-1]
            continuous = prev.value_at(seg.start) == seg.value
            if continuous and prev.slope == seg.slope:
                continue
        merged.append(seg)
    return merged
