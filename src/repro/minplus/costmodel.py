"""Calibrated cost model steering exact-vs-hybrid kernel dispatch.

The hybrid float64 kernel backend wins decisively on large curves but
*loses* to the exact path on tiny ones: lowering a curve into packed
interval arrays is a fixed cost that a 10-segment deconvolution never
amortizes.  Guessing the crossover per workload is exactly the kind of
per-machine constant a measurement should settle, so the ``"auto"``
backend (:mod:`repro.minplus.backend`) consults this module per call:

* a **cost table** maps ``(op, size bucket)`` to measured median
  seconds under each concrete backend; :func:`choose` picks the cheaper
  one (ties go to ``"hybrid"``, whose results are bit-identical anyway);
* the table is populated by :func:`calibrate` — a fast one-shot
  microbenchmark over synthetic RTC-shaped curves (``repro-analyze
  calibrate`` on the command line) — and persisted as JSON next to the
  persistent result cache (or at ``REPRO_COSTMODEL``);
* without a calibration file the **conservative prior** applies: tiny
  deconvolutions and horizontal deviations route to ``"exact"`` (the
  regimes the benchmark history shows hybrid losing), everything else
  to ``"hybrid"``.  The prior guarantees the "no size regime slower
  than exact" floor even on a cold machine;
* a corrupt or truncated calibration file is never fatal: the loader
  falls back to the prior and records ``costmodel.load_errors``
  (fault-injectable through the ``costmodel.corrupt`` chaos site).

Dispatch only ever picks *which* certified path runs — both produce
bit-identical results — so a stale or even adversarial table can cost
time, never correctness.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro import perf

__all__ = [
    "OPS",
    "NATIVE_OPS",
    "CALIBRATION_SIZES",
    "bucket_of",
    "choose",
    "choose_tier",
    "calibrate",
    "load",
    "save",
    "path",
    "describe",
    "current_table",
    "apply_table",
    "reset",
]

#: The dispatched operations, in calibration order.
OPS = ("conv", "deconv", "hdev", "pinv")

#: Ops with a compiled inner loop: calibration measures an optional
#: third ``"native"`` column for these, and :func:`choose_tier` may
#: answer ``"native"`` when it was measured cheapest *and* the compiled
#: tier actually loads on this machine.
NATIVE_OPS = frozenset({"conv", "deconv"})

#: Default curve sizes the calibration probes, one bucket each.
CALIBRATION_SIZES = (6, 12, 24, 48, 96, 192)

#: Size buckets are powers of two on the operand segment count: bucket
#: ``b`` covers ``[2**b, 2**(b+1))``, the last one everything beyond.
N_BUCKETS = 11

#: Conservative prior: route the op to ``"exact"`` strictly below this
#: segment count when no measurement is available.  The thresholds come
#: from the committed benchmark history (deconv 0.98x and hdev 0.75x at
#: n=10 under hybrid; both comfortably >1x by n=100) with headroom, so a
#: cold table can only misroute *away* from the known-losing regimes.
PRIOR_EXACT_BELOW = {"conv": 0, "pinv": 0, "deconv": 24, "hdev": 48}

#: ``{op: {bucket: {"exact": seconds, "hybrid": seconds}}}`` or None
#: (prior-only).  Bucket keys are ints in memory, strings on disk.
_table: Optional[Dict[str, Dict[int, Dict[str, float]]]] = None
_loaded = False
_source = "prior"  # "prior" | "file" | "calibrated" | "parent"


def bucket_of(n: int) -> int:
    """The size bucket of an operand with *n* segments."""
    return min(max(int(n), 1).bit_length() - 1, N_BUCKETS - 1)


def path() -> Optional[str]:
    """Where the calibration table persists, or None (no persistence).

    ``REPRO_COSTMODEL`` overrides; the default lives next to the
    persistent result cache so one ``--cache-dir`` configures both.
    """
    env = os.environ.get("REPRO_COSTMODEL")
    if env:
        return env
    from repro.parallel import cache as result_cache

    cache_dir = result_cache.active_dir()
    if cache_dir is None:
        return None
    return os.path.join(cache_dir, "costmodel.json")


def _validate_table(raw) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Parse-or-raise: structural validation of a loaded table."""
    if not isinstance(raw, dict):
        raise ValueError("cost table is not an object")
    table: Dict[str, Dict[int, Dict[str, float]]] = {}
    for op, buckets in raw.items():
        if op not in OPS:
            continue  # forward compatibility: ignore unknown ops
        if not isinstance(buckets, dict):
            raise ValueError(f"cost table op {op!r} is not an object")
        out: Dict[int, Dict[str, float]] = {}
        for bucket, times in buckets.items():
            b = int(bucket)
            if not 0 <= b < N_BUCKETS:
                raise ValueError(f"bucket {b} outside [0, {N_BUCKETS})")
            te = float(times["exact"])
            th = float(times["hybrid"])
            if te <= 0 or th <= 0:
                raise ValueError("non-positive calibration time")
            entry = {"exact": te, "hybrid": th}
            if "native" in times:
                tn = float(times["native"])
                if tn <= 0:
                    raise ValueError("non-positive calibration time")
                entry["native"] = tn
            out[b] = entry
        if out:
            table[op] = out
    return table


def load() -> bool:
    """Load the persisted table (True on success, prior otherwise)."""
    global _table, _loaded, _source
    _loaded = True
    p = path()
    if p is None or not os.path.exists(p):
        _table, _source = None, "prior"
        return False
    from repro.resilience import chaos

    try:
        with open(p, "rb") as fh:
            blob = fh.read()
        if chaos.should_fire("costmodel.corrupt", key=p):
            blob = blob[: len(blob) // 2]
        _table = _validate_table(json.loads(blob.decode("utf-8")))
        _source = "file"
        perf.record("costmodel.loads")
        return True
    except Exception:
        # A mangled table must never take the analysis down: the prior
        # is always a sound (if slower) dispatch policy.
        _table, _source = None, "prior"
        perf.record("costmodel.load_errors")
        return False


def save(to: Optional[str] = None) -> Optional[str]:
    """Persist the in-memory table as JSON; returns the path or None."""
    p = to or path()
    if p is None or _table is None:
        return None
    payload = {
        op: {str(b): times for b, times in buckets.items()}
        for op, buckets in _table.items()
    }
    tmp = f"{p}.tmp.{os.getpid()}"
    os.makedirs(os.path.dirname(p) or ".", exist_ok=True)
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    os.replace(tmp, p)
    return p


def _ensure_loaded() -> None:
    if not _loaded:
        load()


#: Memoized availability of the compiled tier (None = not yet probed).
#: Probed lazily, and only when a table actually carries a "native"
#: column — a prior-only process never imports the loader.
_native_ok: Optional[bool] = None


def _native_available() -> bool:
    global _native_ok
    if _native_ok is None:
        from repro.minplus import _native

        _native_ok = _native.available()
    return _native_ok


def choose_tier(op: str, n: int) -> str:
    """The cheapest measured tier (``"exact"``/``"hybrid"``/``"native"``)
    for *op* on operands of *n* segments.

    Consults the measured bucket when the table has one (nearest
    populated bucket otherwise — cost curves are monotone enough in the
    bucket index that the neighbour is the best available estimate);
    falls back to the conservative prior when the table is cold.
    ``"native"`` is answered only when the bucket measured it strictly
    cheapest *and* the compiled library loads on this machine — a table
    calibrated on a box with a toolchain can ship to one without.
    """
    _ensure_loaded()
    buckets = _table.get(op) if _table else None
    if buckets:
        b = bucket_of(n)
        if b not in buckets:
            b = min(buckets, key=lambda k: (abs(k - b), k))
        times = buckets[b]
        best, tier = times["hybrid"], "hybrid"
        tn = times.get("native")
        if tn is not None and tn < best and _native_available():
            best, tier = tn, "native"
        if times["exact"] < best:
            tier = "exact"
        return tier
    return "exact" if n < PRIOR_EXACT_BELOW.get(op, 0) else "hybrid"


def choose(op: str, n: int) -> str:
    """The cheaper concrete backend (``"exact"``/``"hybrid"``) for *op*
    on operands of *n* segments.

    ``"native"`` runs on the hybrid algorithms (its compiled inner loops
    engage inside the kernels), so for callers picking the *algorithm*
    tier it collapses to ``"hybrid"``.
    """
    return "exact" if choose_tier(op, n) == "exact" else "hybrid"


def describe() -> str:
    """Dispatch-table provenance for status lines (e.g. ``prior``)."""
    _ensure_loaded()
    return _source


def current_table():
    """The resolved table for shipping to worker processes (or None)."""
    _ensure_loaded()
    return _table


def apply_table(table) -> None:
    """Adopt a parent process's :func:`current_table` in a worker.

    Workers never read the calibration file themselves: dispatch
    decisions are inherited, so a fleet run is steered by exactly one
    table no matter when each worker was forked.
    """
    global _table, _loaded, _source
    _table = table
    _loaded = True
    _source = "parent" if table is not None else "prior"


def reset() -> None:
    """Forget the loaded table (tests / reconfiguration)."""
    global _table, _loaded, _source, _native_ok
    _table, _loaded, _source = None, False, "prior"
    _native_ok = None


# ----------------------------------------------------------------------
# Calibration microbenchmark
# ----------------------------------------------------------------------

def _stair(n: int, seed: int, scale: int = 1):
    """Synthetic staircase arrival curve (the RTC request-bound shape)."""
    import random

    from repro._numeric import Q
    from repro.minplus.curve import Curve
    from repro.minplus.segment import Segment

    rng = random.Random(seed)
    segs = []
    t, v = Q(0), Q(0)
    for i in range(max(n - 1, 1)):
        segs.append(Segment(t, v, Q(0)))
        t += Q(rng.randint(1, 3))
        v += Q(max(1, 2 * (n - i) // max(n, 1) * scale + rng.randint(0, 1)), 2)
    segs.append(Segment(t, v, Q(1, 2)))
    return Curve(segs)


def _service(n: int, seed: int):
    """Synthetic convex ramp-up service curve (rate-2 tail)."""
    import random

    from repro._numeric import Q
    from repro.minplus.curve import Curve
    from repro.minplus.segment import Segment

    rng = random.Random(seed)
    segs = [Segment(Q(0), Q(0), Q(0))]
    t, v = Q(2), Q(0)
    for i in range(1, max(n - 1, 2)):
        slope = Q(i, n)
        segs.append(Segment(t, v, slope))
        dt = Q(rng.randint(1, 2))
        v += slope * dt
        t += dt
    segs.append(Segment(t, v, Q(2)))
    return Curve(segs)


def _op_thunks(n: int):
    """One exact-vs-hybrid thunk pair per dispatched op at size *n*."""
    from repro._numeric import Q
    from repro.minplus import kernels
    from repro.minplus.convolution import min_plus_conv, min_plus_deconv
    from repro.minplus.deviation import (
        horizontal_deviation,
        lower_pseudo_inverse_batch,
    )

    alpha = _stair(n, 1)
    alpha2 = _stair(n, 2, scale=2)
    beta = _service(n, 3)
    works = [beta.at(beta.last_breakpoint) * Q(k % 37 + 1, 40) for k in range(256)]
    zeros = [Q(0)] * len(works)
    gids = [k % 4 for k in range(len(works))]

    def pinv_exact():
        return lower_pseudo_inverse_batch(beta, works)

    def pinv_hybrid():
        return kernels.screened_pinv_delay_groups(beta, zeros, works, gids, 4)

    return {
        "conv": lambda be: min_plus_conv(alpha, alpha2, on_dip="fill", backend=be),
        "deconv": lambda be: min_plus_deconv(alpha, beta, on_dip="fill", backend=be),
        "hdev": lambda be: horizontal_deviation(alpha, beta, backend=be),
        "pinv": lambda be: pinv_exact() if be == "exact" else pinv_hybrid(),
    }


def calibrate(
    sizes: Tuple[int, ...] = CALIBRATION_SIZES,
    reps: int = 3,
    time_budget_s: float = 30.0,
    persist: bool = True,
) -> List[dict]:
    """One-shot microbenchmark populating (and persisting) the table.

    Times every dispatched op at each size under both concrete
    backends on synthetic RTC-shaped curves, medians over *reps* runs
    with the operation memo cleared per run (dispatch must price the
    cold path — a memo hit is equally free under either backend).
    Stops adding sizes once *time_budget_s* is spent, keeping the
    larger — already hybrid-dominated — buckets on the prior.

    Returns the measurement rows (op, n, bucket, exact_s, hybrid_s,
    choice) for reporting; installs the table in-process either way.
    """
    global _table, _loaded, _source
    from repro.minplus import backend as backend_mod
    from repro.minplus import kernels

    if not backend_mod.HAVE_NUMPY:
        raise RuntimeError("calibration requires numpy (the hybrid tier)")
    rows: List[dict] = []
    table: Dict[str, Dict[int, Dict[str, float]]] = {op: {} for op in OPS}
    t_start = time.perf_counter()
    for n in sizes:
        if time.perf_counter() - t_start > time_budget_s:
            break
        thunks = _op_thunks(n)
        for op in OPS:
            thunk = thunks[op]
            tiers = ["exact", "hybrid"]
            if op in NATIVE_OPS and _native_available():
                # The compiled loops engage through the ambient backend,
                # so the native sample runs under use_backend("native").
                tiers.append("native")
            times = {}
            for be in tiers:
                samples = []
                for _ in range(max(reps, 1)):
                    kernels.op_cache_clear()
                    if be == "native":
                        with backend_mod.use_backend("native"):
                            t0 = time.perf_counter()
                            thunk("native")
                            samples.append(time.perf_counter() - t0)
                    else:
                        t0 = time.perf_counter()
                        thunk(be)
                        samples.append(time.perf_counter() - t0)
                samples.sort()
                times[be] = max(samples[len(samples) // 2], 1e-9)
            table[op][bucket_of(n)] = times
            choice = "hybrid"
            best = times["hybrid"]
            if times.get("native") is not None and times["native"] < best:
                choice, best = "native", times["native"]
            if times["exact"] < best:
                choice = "exact"
            rows.append(
                {
                    "op": op,
                    "n": n,
                    "bucket": bucket_of(n),
                    "exact_s": times["exact"],
                    "hybrid_s": times["hybrid"],
                    "native_s": times.get("native"),
                    "choice": choice,
                }
            )
    _table = {op: buckets for op, buckets in table.items() if buckets}
    if not _table:
        _table = None
    _loaded = True
    _source = "calibrated" if _table else "prior"
    perf.record("costmodel.calibrations")
    if persist and _table:
        save()
    return rows
