"""Build-on-first-use loader for the compiled kernel tier.

``REPRO_BACKEND=native`` engages a small C library
(:file:`_native.c`, next to this module) for the envelope-pair pruning
inner loops.  The library is compiled with the system C compiler into a
per-user cache directory the first time it is needed and loaded through
:mod:`ctypes`; **every** failure mode — no compiler, a failed build, a
missing/corrupt artifact — degrades silently to the pure-numpy hybrid
tier (:func:`available` returns False and the kernels take their
vectorized path).  The native mask prunes a sound subset of the numpy
mask's pairs, so results are bit-identical either way.

Environment:

* ``CC`` — compiler to invoke (default ``cc``);
* ``REPRO_NATIVE_DIR`` — where the built ``.so`` is cached (default: a
  content-hashed name under the system temp directory, so a source
  change triggers a rebuild and stale artifacts are never loaded).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

from repro import perf

__all__ = [
    "available",
    "build_error",
    "conv_keep_mask",
    "conv_witness_grid",
    "deconv_keep_mask",
    "deconv_witness_grid",
]

try:
    import numpy as np
except ImportError:  # pragma: no cover - native requires the hybrid tier
    np = None

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_native.c")

_lib = None
_tried = False
_error: Optional[str] = None

_DPTR = ctypes.POINTER(ctypes.c_double)
_U8PTR = ctypes.POINTER(ctypes.c_ubyte)


def _so_path(tag: str) -> str:
    base = os.environ.get("REPRO_NATIVE_DIR")
    if not base:
        base = os.path.join(
            tempfile.gettempdir(), f"repro-native-{os.getuid()}"
        )
    os.makedirs(base, exist_ok=True)
    return os.path.join(base, f"repro_native_{tag}.so")


def _load():
    global _lib, _tried, _error
    if _tried:
        return _lib
    _tried = True
    if np is None:
        _error = "numpy unavailable"
        return None
    try:
        with open(_SRC, "rb") as fh:
            src = fh.read()
        tag = hashlib.sha256(src).hexdigest()[:16]
        so = _so_path(tag)
        if not os.path.exists(so):
            cc = os.environ.get("CC", "cc")
            tmp = f"{so}.build.{os.getpid()}"
            proc = subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", tmp, _SRC, "-lm"],
                capture_output=True,
                timeout=120,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"cc failed: {proc.stderr.decode(errors='replace')[:400]}"
                )
            os.replace(tmp, so)
            perf.record("native.builds")
        lib = ctypes.CDLL(so)
        lib.conv_keep_mask.restype = None
        lib.conv_keep_mask.argtypes = [
            ctypes.c_long, ctypes.c_long,
            _DPTR, _DPTR, _DPTR, _DPTR, _DPTR, _DPTR,
            ctypes.c_double,
            _DPTR, _DPTR, ctypes.c_long,
            _U8PTR,
        ]
        lib.conv_witness_grid.restype = None
        lib.conv_witness_grid.argtypes = [
            _DPTR, ctypes.c_long,
            _DPTR, _DPTR, ctypes.c_long,
            ctypes.c_long, _DPTR, _DPTR, _DPTR, _DPTR,
            _DPTR,
        ]
        lib.deconv_witness_grid.restype = None
        lib.deconv_witness_grid.argtypes = [
            _DPTR, ctypes.c_long,
            _DPTR, ctypes.c_long,
            ctypes.c_long, _DPTR, _DPTR, _DPTR, _DPTR, _DPTR,
            ctypes.c_long, _DPTR, _DPTR, _DPTR, _DPTR,
            _DPTR,
        ]
        lib.deconv_keep_mask.restype = None
        lib.deconv_keep_mask.argtypes = [
            ctypes.c_long, ctypes.c_long,
            _DPTR, _DPTR, _DPTR, _DPTR,
            ctypes.c_double, ctypes.c_long,
            _DPTR, _DPTR, ctypes.c_long,
            ctypes.c_long, _DPTR, _DPTR, _DPTR, _DPTR,
            ctypes.c_long, _DPTR, _DPTR, _DPTR, _DPTR, _DPTR,
            _U8PTR,
        ]
        _lib = lib
        _error = None
    except Exception as exc:  # noqa: BLE001 - any failure means fallback
        _lib = None
        _error = f"{type(exc).__name__}: {exc}"
        perf.record("native.build_failures")
    return _lib


def available() -> bool:
    """True iff the compiled tier built (or was cached) and loaded."""
    return _load() is not None


def build_error() -> Optional[str]:
    """Why the compiled tier is unavailable (None when it loaded)."""
    _load()
    return _error


def _dp(a):
    return np.ascontiguousarray(a, dtype=np.float64).ctypes.data_as(_DPTR)


def conv_keep_mask(a_v_lo, b_v_lo, a_lo_lo, b_lo_lo, a_hi_hi, b_hi_hi,
                   cap_hi, tau, stair):
    """Pairwise keep-mask via the C inner loop (None when unavailable)."""
    lib = _load()
    if lib is None:
        return None
    na, nb = len(a_v_lo), len(b_v_lo)
    keep = np.empty((na, nb), dtype=np.uint8)
    lib.conv_keep_mask(
        na, nb,
        _dp(a_v_lo), _dp(b_v_lo),
        _dp(a_lo_lo), _dp(b_lo_lo),
        _dp(a_hi_hi), _dp(b_hi_hi),
        float(cap_hi),
        _dp(tau), _dp(stair), len(tau),
        keep.ctypes.data_as(_U8PTR),
    )
    perf.record("kernel.native_calls")
    return keep.astype(bool)


def conv_witness_grid(tau, s_probe, fs_hi, g_lowered, stair):
    """Min-combine probe witnesses into *stair* in C (False = fallback)."""
    lib = _load()
    if lib is None:
        return False
    lib.conv_witness_grid(
        _dp(tau), len(tau),
        _dp(s_probe), _dp(fs_hi), len(s_probe),
        g_lowered.n,
        _dp(g_lowered.S_lo), _dp(g_lowered.V_hi),
        _dp(g_lowered.SL_lo), _dp(g_lowered.SL_hi),
        stair.ctypes.data_as(_DPTR),
    )
    return True


def deconv_witness_grid(tau, u_probe, f_lowered, g_lowered, best):
    """Max-combine deconv probe witnesses into *best* in C, including
    the final running-maximum accumulation (False = fallback)."""
    lib = _load()
    if lib is None:
        return False
    lib.deconv_witness_grid(
        _dp(tau), len(tau),
        _dp(u_probe), len(u_probe),
        f_lowered.n,
        _dp(f_lowered.S_hi), _dp(f_lowered.V_lo),
        _dp(f_lowered.SL_lo), _dp(f_lowered.SL_hi), _dp(f_lowered.VE_lo),
        g_lowered.n,
        _dp(g_lowered.S_lo), _dp(g_lowered.V_hi),
        _dp(g_lowered.SL_lo), _dp(g_lowered.SL_hi),
        best.ctypes.data_as(_DPTR),
    )
    perf.record("kernel.native_calls")
    return True


def deconv_keep_mask(a_lo_lo, a_hi_hi, b_lo_lo, b_hi_hi, cap_hi, nsplit,
                     tau, d_lo, f_lowered, g_lowered):
    """Deconv checkpoint-split keep-mask in C (None when unavailable)."""
    lib = _load()
    if lib is None:
        return None
    na, nb = len(a_lo_lo), len(b_lo_lo)
    keep = np.empty((na, nb), dtype=np.uint8)
    lib.deconv_keep_mask(
        na, nb,
        _dp(a_lo_lo), _dp(a_hi_hi),
        _dp(b_lo_lo), _dp(b_hi_hi),
        float(cap_hi), int(nsplit),
        _dp(tau), _dp(d_lo), len(tau),
        f_lowered.n,
        _dp(f_lowered.S_lo), _dp(f_lowered.V_hi),
        _dp(f_lowered.SL_lo), _dp(f_lowered.SL_hi),
        g_lowered.n,
        _dp(g_lowered.S_hi), _dp(g_lowered.V_lo),
        _dp(g_lowered.SL_lo), _dp(g_lowered.SL_hi), _dp(g_lowered.VE_lo),
        keep.ctypes.data_as(_U8PTR),
    )
    perf.record("kernel.native_calls")
    return keep.astype(bool)
