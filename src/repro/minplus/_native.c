/* Compiled inner loops of the min-plus kernel screens (REPRO_BACKEND=native).
 *
 * One translation unit, no Python.h: the library is built with a plain C
 * compiler (`cc -O2 -shared -fPIC`) on first use and loaded through
 * ctypes, so the optional tier needs no build system and no extension
 * machinery.  Every function mirrors a numpy screen in kernels.py and
 * must preserve its certificates: all guard bands are the same
 * one-ulp `nextafter` outward roundings the vectorized code applies.
 */

#include <math.h>

/* First index k with tau[k] >= x (tau ascending); ng-1 when none is. */
static long grid_at_or_after(const double *tau, long ng, double x)
{
    long lo = 0, hi = ng - 1;
    while (lo < hi) {
        long mid = lo + (hi - lo) / 2;
        if (tau[mid] >= x)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

/* Keep-mask over the na*nb segment pairs of a min-plus convolution.
 *
 * Mirrors the staircase branch of kernels.conv_prune_mask: a pair whose
 * certified start value (one ulp down) exceeds the certified staircase
 * upper bound of the convolution at-or-after its domain's right end
 * (one ulp up, clipped at the cap) provably lies strictly above the
 * lower envelope everywhere it is defined, and pairs starting beyond
 * the cap contribute nothing.  Unlike the vectorized path this makes
 * one pass with no n^2 temporaries.  The mask it computes prunes a
 * subset of what the numpy path prunes (the cheap f(0)+g(t) bound is
 * grid-quantized here) — any sound subset leaves the result identical.
 */
void conv_keep_mask(long na, long nb,
                    const double *a_v_lo, const double *b_v_lo,
                    const double *a_lo_lo, const double *b_lo_lo,
                    const double *a_hi_hi, const double *b_hi_hi,
                    double cap_hi,
                    const double *tau, const double *stair, long ng,
                    unsigned char *keep)
{
    for (long i = 0; i < na; i++) {
        for (long j = 0; j < nb; j++) {
            long idx = i * nb + j;
            double lo = nextafter(a_lo_lo[i] + b_lo_lo[j], -INFINITY);
            if (lo > cap_hi) {
                keep[idx] = 0;
                continue;
            }
            double v0 = nextafter(a_v_lo[i] + b_v_lo[j], -INFINITY);
            double end = nextafter(a_hi_hi[i] + b_hi_hi[j], INFINITY);
            if (end > cap_hi)
                end = cap_hi;
            long k = grid_at_or_after(tau, ng, end);
            keep[idx] = (v0 > stair[k]) ? 0 : 1;
        }
    }
}

/* Certified staircase upper bound of C(t) = inf_s f(s) + g(t - s) on the
 * tau grid, from precomputed probe splits: for probe s with certified
 * f-upper-bound fs_hi, every grid point tau >= s gets the witness
 * fs_hi + g_hi(u) with u = clamp(nextafter(tau - s, +inf), 0, tau) —
 * u >= tau - s and g nondecreasing keep the bound sound (see
 * kernels._conv_witness_grid for the full argument).  g is evaluated
 * through its lowered upper arrays exactly as Lowered.eval_bounds does.
 */
void conv_witness_grid(const double *tau, long ng,
                       const double *s_probe, const double *fs_hi, long np_,
                       long gn,
                       const double *g_S_lo, const double *g_V_hi,
                       const double *g_SL_lo, const double *g_SL_hi,
                       double *stair /* in-out: min-combined */)
{
    for (long p = 0; p < np_; p++) {
        double s = s_probe[p];
        double fv = fs_hi[p];
        for (long k = 0; k < ng; k++) {
            if (tau[k] < s)
                continue;
            double u = nextafter(tau[k] - s, INFINITY);
            if (u > tau[k])
                u = tau[k];
            if (u < 0.0)
                u = 0.0;
            /* last segment j with g_S_lo[j] <= u (binary search) */
            long lo = 0, hi = gn - 1, j = 0;
            while (lo <= hi) {
                long mid = lo + (hi - lo) / 2;
                if (g_S_lo[mid] <= u) {
                    j = mid;
                    lo = mid + 1;
                } else {
                    hi = mid - 1;
                }
            }
            double dt = nextafter(u - g_S_lo[j], INFINITY);
            if (dt < 0.0)
                dt = 0.0;
            double sl_lo = g_SL_lo[j] > 0.0 ? g_SL_lo[j] : 0.0;
            double sl_hi = g_SL_hi[j] > 0.0 ? g_SL_hi[j] : 0.0;
            double m = sl_lo * dt;
            double m2 = sl_hi * dt;
            if (m2 > m)
                m = m2;
            double ghi = nextafter(g_V_hi[j] + nextafter(m, INFINITY),
                                   INFINITY);
            double cand = nextafter(fv + ghi, INFINITY);
            if (cand < stair[k])
                stair[k] = cand;
        }
    }
}
