/* Compiled inner loops of the min-plus kernel screens (REPRO_BACKEND=native).
 *
 * One translation unit, no Python.h: the library is built with a plain C
 * compiler (`cc -O2 -shared -fPIC`) on first use and loaded through
 * ctypes, so the optional tier needs no build system and no extension
 * machinery.  Every function mirrors a numpy screen in kernels.py and
 * must preserve its certificates: all guard bands are the same
 * one-ulp `nextafter` outward roundings the vectorized code applies.
 */

#include <math.h>

/* First index k with tau[k] >= x (tau ascending); ng-1 when none is. */
static long grid_at_or_after(const double *tau, long ng, double x)
{
    long lo = 0, hi = ng - 1;
    while (lo < hi) {
        long mid = lo + (hi - lo) / 2;
        if (tau[mid] >= x)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

/* Keep-mask over the na*nb segment pairs of a min-plus convolution.
 *
 * Mirrors the staircase branch of kernels.conv_prune_mask: a pair whose
 * certified start value (one ulp down) exceeds the certified staircase
 * upper bound of the convolution at-or-after its domain's right end
 * (one ulp up, clipped at the cap) provably lies strictly above the
 * lower envelope everywhere it is defined, and pairs starting beyond
 * the cap contribute nothing.  Unlike the vectorized path this makes
 * one pass with no n^2 temporaries.  The mask it computes prunes a
 * subset of what the numpy path prunes (the cheap f(0)+g(t) bound is
 * grid-quantized here) — any sound subset leaves the result identical.
 */
void conv_keep_mask(long na, long nb,
                    const double *a_v_lo, const double *b_v_lo,
                    const double *a_lo_lo, const double *b_lo_lo,
                    const double *a_hi_hi, const double *b_hi_hi,
                    double cap_hi,
                    const double *tau, const double *stair, long ng,
                    unsigned char *keep)
{
    for (long i = 0; i < na; i++) {
        for (long j = 0; j < nb; j++) {
            long idx = i * nb + j;
            double lo = nextafter(a_lo_lo[i] + b_lo_lo[j], -INFINITY);
            if (lo > cap_hi) {
                keep[idx] = 0;
                continue;
            }
            double v0 = nextafter(a_v_lo[i] + b_v_lo[j], -INFINITY);
            double end = nextafter(a_hi_hi[i] + b_hi_hi[j], INFINITY);
            if (end > cap_hi)
                end = cap_hi;
            long k = grid_at_or_after(tau, ng, end);
            keep[idx] = (v0 > stair[k]) ? 0 : 1;
        }
    }
}

/* Upper bound of a nondecreasing lowered curve at t — the upper branch
 * of kernels.Lowered.eval_bounds: the last segment j with S_lo[j] <= t,
 * its slope bounds clamped nonnegative, affine extension evaluated
 * upward with one-ulp guard bands on the dt, the slope product and the
 * final sum. */
static double eval_hi(long n, const double *S_lo, const double *V_hi,
                      const double *SL_lo, const double *SL_hi, double t)
{
    long lo = 0, hi = n - 1, j = 0;
    while (lo <= hi) {
        long mid = lo + (hi - lo) / 2;
        if (S_lo[mid] <= t) {
            j = mid;
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    double dt = nextafter(t - S_lo[j], INFINITY);
    if (dt < 0.0)
        dt = 0.0;
    double sl_lo = SL_lo[j] > 0.0 ? SL_lo[j] : 0.0;
    double sl_hi = SL_hi[j] > 0.0 ? SL_hi[j] : 0.0;
    double m = sl_lo * dt;
    double m2 = sl_hi * dt;
    if (m2 > m)
        m = m2;
    return nextafter(V_hi[j] + nextafter(m, INFINITY), INFINITY);
}

/* Lower bound of a nondecreasing lowered curve at t — the lower branch
 * of kernels.Lowered.eval_bounds: the last segment k with S_hi[k] <= t,
 * downward affine extension capped at the segment-end lower bound
 * VE_lo[k] (sound once t moved past the segment, f nondecreasing). */
static double eval_lo(long n, const double *S_hi, const double *V_lo,
                      const double *SL_lo, const double *SL_hi,
                      const double *VE_lo, double t)
{
    long lo = 0, hi = n - 1, k = 0;
    while (lo <= hi) {
        long mid = lo + (hi - lo) / 2;
        if (S_hi[mid] <= t) {
            k = mid;
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    double dt = nextafter(t - S_hi[k], -INFINITY);
    if (dt < 0.0)
        dt = 0.0;
    double sl_lo = SL_lo[k] > 0.0 ? SL_lo[k] : 0.0;
    double sl_hi = SL_hi[k] > 0.0 ? SL_hi[k] : 0.0;
    double m = sl_lo * dt;
    double m2 = sl_hi * dt;
    if (m2 < m)
        m = m2;
    double v = nextafter(V_lo[k] + nextafter(m, -INFINITY), -INFINITY);
    return v < VE_lo[k] ? v : VE_lo[k];
}

/* Certified staircase lower bound of D(t) = sup_u f(t+u) - g(u) on the
 * tau grid (kernels._deconv_witness_grid): every probe offset u >= 0
 * yields the witness f(tau + u) - g(u) <= D(tau); f evaluates downward
 * and g upward so the bound is sound, and the final running maximum
 * makes the staircase nondecreasing like D itself.  best is in-out and
 * comes back already accumulated. */
void deconv_witness_grid(const double *tau, long ng,
                         const double *u_probe, long np_,
                         long fn, const double *f_S_hi, const double *f_V_lo,
                         const double *f_SL_lo, const double *f_SL_hi,
                         const double *f_VE_lo,
                         long gn, const double *g_S_lo, const double *g_V_hi,
                         const double *g_SL_lo, const double *g_SL_hi,
                         double *best)
{
    for (long p = 0; p < np_; p++) {
        double u = u_probe[p];
        double g_hi = eval_hi(gn, g_S_lo, g_V_hi, g_SL_lo, g_SL_hi, u);
        for (long k = 0; k < ng; k++) {
            double x = nextafter(tau[k] + u, -INFINITY);
            double f_lo = eval_lo(fn, f_S_hi, f_V_lo, f_SL_lo, f_SL_hi,
                                  f_VE_lo, x);
            double cand = nextafter(f_lo - g_hi, -INFINITY);
            if (cand > best[k])
                best[k] = cand;
        }
    }
    for (long k = 1; k < ng; k++)
        if (best[k - 1] > best[k])
            best[k] = best[k - 1];
}

/* Keep-mask over the na*nb segment pairs of a min-plus deconvolution
 * (the dip-filling upper envelope) — the checkpoint-subdivision loop of
 * kernels.deconv_prune_mask in one pass with no n^2 temporaries.  A
 * pair with domain [t0, t1] is pruned only when on EVERY of the nsplit
 * sub-intervals its value upper bound at the right end c1,
 * V(c1) = f(min(a.hi, c1 + b.hi)) - g(max(b.lo, a.lo - c1)), lies
 * strictly below the certified envelope floor d_lo at the left end c0
 * — the same one-ulp outward roundings as the vectorized path, so the
 * masks are identical and either prunes only provably-dominated pairs. */
void deconv_keep_mask(long na, long nb,
                      const double *a_lo_lo, const double *a_hi_hi,
                      const double *b_lo_lo, const double *b_hi_hi,
                      double cap_hi, long nsplit,
                      const double *tau, const double *d_lo, long ng,
                      long fn, const double *f_S_lo, const double *f_V_hi,
                      const double *f_SL_lo, const double *f_SL_hi,
                      long gn, const double *g_S_hi, const double *g_V_lo,
                      const double *g_SL_lo, const double *g_SL_hi,
                      const double *g_VE_lo,
                      unsigned char *keep)
{
    for (long i = 0; i < na; i++) {
        for (long j = 0; j < nb; j++) {
            long idx = i * nb + j;
            double t_lo = nextafter(a_lo_lo[i] - b_hi_hi[j], -INFINITY);
            double t_hi = nextafter(a_hi_hi[i] - b_lo_lo[j], INFINITY);
            if (t_lo > cap_hi || t_hi < 0.0) {
                keep[idx] = 0; /* entirely outside [0, cap] */
                continue;
            }
            double t0 = t_lo > 0.0 ? t_lo : 0.0;
            double t1 = t_hi < cap_hi ? t_hi : cap_hi;
            if (t1 < t0)
                t1 = t0;
            int prune = 1;
            for (long s = 0; s < nsplit && prune; s++) {
                double c0, c1;
                if (s == 0)
                    c0 = t0;
                else
                    c0 = t0 + nextafter(((double)s / nsplit) * (t1 - t0),
                                        -INFINITY);
                if (s == nsplit - 1)
                    c1 = t1;
                else
                    c1 = nextafter(
                        t0 + ((double)(s + 1) / nsplit) * (t1 - t0),
                        INFINITY);
                double s_arg = nextafter(c1 + b_hi_hi[j], INFINITY);
                if (a_hi_hi[i] < s_arg)
                    s_arg = a_hi_hi[i];
                double f_hi = eval_hi(fn, f_S_lo, f_V_hi, f_SL_lo, f_SL_hi,
                                      s_arg);
                double u_arg = nextafter(a_lo_lo[i] - c1, -INFINITY);
                if (u_arg < 0.0)
                    u_arg = 0.0;
                if (u_arg < b_lo_lo[j])
                    u_arg = b_lo_lo[j];
                double g_lo = eval_lo(gn, g_S_hi, g_V_lo, g_SL_lo, g_SL_hi,
                                      g_VE_lo, u_arg);
                double v_hi = nextafter(f_hi - g_lo, INFINITY);
                /* envelope floor: last grid index with tau[k] <= c0 */
                long lo = 0, hi = ng - 1, k = -1;
                while (lo <= hi) {
                    long mid = lo + (hi - lo) / 2;
                    if (tau[mid] <= c0) {
                        k = mid;
                        lo = mid + 1;
                    } else {
                        hi = mid - 1;
                    }
                }
                double floor_v = (k >= 0) ? d_lo[k] : -INFINITY;
                prune = (v_hi < floor_v) ? 1 : 0;
            }
            keep[idx] = prune ? 0 : 1;
        }
    }
}

/* Certified staircase upper bound of C(t) = inf_s f(s) + g(t - s) on the
 * tau grid, from precomputed probe splits: for probe s with certified
 * f-upper-bound fs_hi, every grid point tau >= s gets the witness
 * fs_hi + g_hi(u) with u = clamp(nextafter(tau - s, +inf), 0, tau) —
 * u >= tau - s and g nondecreasing keep the bound sound (see
 * kernels._conv_witness_grid for the full argument).  g is evaluated
 * through its lowered upper arrays exactly as Lowered.eval_bounds does.
 */
void conv_witness_grid(const double *tau, long ng,
                       const double *s_probe, const double *fs_hi, long np_,
                       long gn,
                       const double *g_S_lo, const double *g_V_hi,
                       const double *g_SL_lo, const double *g_SL_hi,
                       double *stair /* in-out: min-combined */)
{
    for (long p = 0; p < np_; p++) {
        double s = s_probe[p];
        double fv = fs_hi[p];
        for (long k = 0; k < ng; k++) {
            if (tau[k] < s)
                continue;
            double u = nextafter(tau[k] - s, INFINITY);
            if (u > tau[k])
                u = tau[k];
            if (u < 0.0)
                u = 0.0;
            /* last segment j with g_S_lo[j] <= u (binary search) */
            long lo = 0, hi = gn - 1, j = 0;
            while (lo <= hi) {
                long mid = lo + (hi - lo) / 2;
                if (g_S_lo[mid] <= u) {
                    j = mid;
                    lo = mid + 1;
                } else {
                    hi = mid - 1;
                }
            }
            double dt = nextafter(u - g_S_lo[j], INFINITY);
            if (dt < 0.0)
                dt = 0.0;
            double sl_lo = g_SL_lo[j] > 0.0 ? g_SL_lo[j] : 0.0;
            double sl_hi = g_SL_hi[j] > 0.0 ? g_SL_hi[j] : 0.0;
            double m = sl_lo * dt;
            double m2 = sl_hi * dt;
            if (m2 > m)
                m = m2;
            double ghi = nextafter(g_V_hi[j] + nextafter(m, INFINITY),
                                   INFINITY);
            double cand = nextafter(fv + ghi, INFINITY);
            if (cand < stair[k])
                stair[k] = cand;
        }
    }
}
