"""Affine segments, the building block of piecewise-linear curves."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro._numeric import Q, NumLike, as_q

__all__ = ["Segment"]


@dataclass(frozen=True)
class Segment:
    """One affine piece of a curve.

    A segment describes the function ``f(t) = value + slope * (t - start)``
    on the half-open interval ``[start, end)`` where ``end`` is the start of
    the next segment of the owning curve (or ``+oo`` for the last segment).
    Segments therefore make curves *right-continuous*: at a breakpoint the
    curve takes the value of the segment that begins there.

    Attributes:
        start: Left endpoint of the segment's domain.
        value: Curve value at ``start``.
        slope: Constant derivative on the segment.
    """

    start: Fraction
    value: Fraction
    slope: Fraction

    @staticmethod
    def make(start: NumLike, value: NumLike, slope: NumLike) -> "Segment":
        """Build a segment, converting all coordinates to exact rationals."""
        return Segment(as_q(start), as_q(value), as_q(slope))

    def value_at(self, t: NumLike) -> Fraction:
        """Value of the affine extension of this segment at time *t*.

        The segment does not know its own right endpoint, so no domain
        check is performed; callers are responsible for only evaluating
        within ``[start, end)`` (or at ``end`` to obtain the left limit).
        """
        tq = as_q(t)
        return self.value + self.slope * (tq - self.start)

    def shifted(self, dt: NumLike, dv: NumLike = 0) -> "Segment":
        """This segment translated by ``(+dt, +dv)``."""
        return Segment(self.start + as_q(dt), self.value + as_q(dv), self.slope)

    def scaled(self, factor: NumLike) -> "Segment":
        """This segment with value and slope multiplied by *factor*."""
        f = as_q(factor)
        return Segment(self.start, self.value * f, self.slope * f)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Segment(start={self.start}, value={self.value}, slope={self.slope})"


def _segment_sort_key(seg: Segment) -> Q:
    return seg.start
