"""Controlled curve simplification (segment-budget approximations).

Exact request-bound staircases grow one segment per busy-window event;
industrial curve tools keep analyses fast by bounding the number of
segments and accepting a controlled approximation error.  This module
provides the two directions:

* :func:`upper_approximation` — at most ``k`` segments, pointwise **at
  or above** the input (sound for arrival/request curves);
* :func:`lower_approximation` — at most ``k`` segments, pointwise **at
  or below** the input (sound for service curves);

plus :func:`approximation_error` to quantify the loss.  The reduction
greedily merges the adjacent staircase steps whose merge costs the least
additional area, which keeps the error roughly balanced across the
horizon — the heuristic of the classical RTC toolbox.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import List, Tuple

from repro._numeric import Q, NumLike, as_q
from repro.errors import CurveError
from repro.minplus.curve import Curve
from repro.minplus.segment import Segment

__all__ = ["upper_approximation", "lower_approximation", "approximation_error"]


def upper_approximation(curve: Curve, k: int) -> Curve:
    """A curve with at most *k* segments dominating *curve* pointwise.

    Adjacent segments are merged bottom-up; each merge replaces two
    pieces by the larger constant / covering affine piece, choosing at
    every step the merge with the smallest added area.  The tail segment
    is always preserved (it carries the long-run rate).

    Args:
        curve: Input (typically a staircase request bound).
        k: Segment budget, >= 2 (one transient piece plus the tail).

    Raises:
        CurveError: if ``k < 2``.
    """
    return _approximate(curve, k, upper=True)


def lower_approximation(curve: Curve, k: int) -> Curve:
    """A curve with at most *k* segments dominated by *curve* pointwise.

    The mirror image of :func:`upper_approximation` (sound direction for
    lower service curves).
    """
    return _approximate(curve, k, upper=False)


def _approximate(curve: Curve, k: int, upper: bool) -> Curve:
    if k < 2:
        raise CurveError("segment budget must be at least 2")
    segs = list(curve.segments)
    if len(segs) <= k:
        return curve
    # Work on the transient only; the last (infinite) segment is pinned.
    transient = segs[:-1]
    tail = segs[-1]
    # Greedy merging: repeatedly merge the adjacent pair with least cost.
    # Representation: list of (start, end, value_at_start, slope).
    pieces: List[List[Q]] = []
    starts = curve.breakpoints()
    for i, seg in enumerate(transient):
        end = starts[i + 1]
        pieces.append([seg.start, end, seg.value, seg.slope])
    while len(pieces) + 1 > k:
        best_idx = None
        best_cost = None
        for i in range(len(pieces) - 1):
            cost = _merge_cost(pieces[i], pieces[i + 1], upper)
            if best_cost is None or cost < best_cost:
                best_cost, best_idx = cost, i
        merged = _merge(pieces[best_idx], pieces[best_idx + 1], upper)
        pieces[best_idx : best_idx + 2] = [merged]
    out = [Segment(p[0], p[2], p[3]) for p in pieces]
    out.append(tail)
    result = Curve(out)
    # The merge construction guarantees domination; normalisation may
    # have fused pieces but never changes values.
    return result


def _cover_piece(a: List[Q], b: List[Q], upper: bool) -> Tuple[Q, Q]:
    """(value_at_start, slope) of one affine piece covering both *a* and
    *b* on [a.start, b.end] from above (or below)."""
    xs = [a[0], a[1], b[0], b[1]]
    # Candidate: the chord through the extreme corner values.
    av0, av1 = a[2], a[2] + a[3] * (a[1] - a[0])
    bv0, bv1 = b[2], b[2] + b[3] * (b[1] - b[0])
    if upper:
        # Horizontal piece at the max, then the affine hull attempt.
        top = max(av0, av1, bv0, bv1)
        return top, Q(0)
    bottom = min(av0, av1, bv0, bv1)
    return bottom, Q(0)


def _merge(a: List[Q], b: List[Q], upper: bool) -> List[Q]:
    v, s = _cover_piece(a, b, upper)
    return [a[0], b[1], v, s]


def _merge_cost(a: List[Q], b: List[Q], upper: bool) -> Q:
    """Area added by merging *a* and *b* (absolute, exact)."""
    v, s = _cover_piece(a, b, upper)
    span_a = a[1] - a[0]
    span_b = b[1] - b[0]
    area_orig = (a[2] + a[3] * span_a / 2) * span_a + (
        b[2] + b[3] * span_b / 2
    ) * span_b
    span = b[1] - a[0]
    area_new = (v + s * span / 2) * span
    return area_new - area_orig if upper else area_orig - area_new


def approximation_error(original: Curve, approx: Curve, horizon: NumLike):
    """``(max, mean)`` absolute pointwise gap on ``[0, horizon]``.

    Evaluated at the union of both curves' breakpoints plus interval
    midpoints (exact for PWL inputs).
    """
    hz = as_q(horizon)
    points = sorted(
        {t for t in original.breakpoints() + approx.breakpoints() if t <= hz}
        | {hz}
    )
    samples: List[Q] = []
    for a, b in zip(points, points[1:]):
        samples.extend([a, (a + b) / 2])
    samples.append(points[-1])
    gaps = [abs(approx.at(t) - original.at(t)) for t in samples]
    return max(gaps), sum(gaps) / len(gaps)
