"""Kernel backend selection for the min-plus algebra.

Two backends compute every min-plus operation:

* ``"exact"`` — the historical pure-:class:`~fractions.Fraction` pairwise
  segment algorithms, bit-identical to every release before the kernel
  layer existed;
* ``"hybrid"`` — the same exact algorithms steered by the vectorized
  float64 screens of :mod:`repro.minplus.kernels`: curves are lowered
  once into packed breakpoint arrays with *outward rounding*, cheap
  certified interval arithmetic settles the overwhelming majority of
  comparisons/prunes, and the exact rational path runs only for the
  queries the float certificate cannot decide.  Hybrid results are
  therefore **identical** (same Fractions, same tie-breaking, same
  exceptions) to exact results — the screens never decide anything, they
  only *skip work whose outcome is already certified*.

Resolution order for the active backend:

1. an explicit ``backend=`` keyword argument on the API entry point;
2. the innermost :func:`use_backend` context / :func:`set_backend` call;
3. the ``REPRO_BACKEND`` environment variable;
4. the default, ``"hybrid"`` when NumPy is importable, else ``"exact"``.

NumPy is optional: without it every resolution collapses to ``"exact"``
(requesting ``"hybrid"`` explicitly raises, so misconfiguration is loud).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "BACKENDS",
    "HAVE_NUMPY",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

BACKENDS = ("exact", "hybrid")

try:  # NumPy is an optional accelerator, never a hard dependency.
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    HAVE_NUMPY = False

#: Process-wide override installed by :func:`set_backend` (None = unset).
_override: Optional[str] = None


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    if name == "hybrid" and not HAVE_NUMPY:
        raise RuntimeError(
            "backend 'hybrid' requires numpy, which is not importable"
        )
    return name


def get_backend() -> str:
    """The currently active backend name (no keyword argument in play)."""
    if _override is not None:
        return _override
    env = os.environ.get("REPRO_BACKEND")
    if env:
        if env not in BACKENDS:
            raise ValueError(
                f"REPRO_BACKEND={env!r} is not one of {BACKENDS}"
            )
        if env == "hybrid" and not HAVE_NUMPY:
            return "exact"
        return env
    return "hybrid" if HAVE_NUMPY else "exact"


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve an API-level ``backend=`` keyword to a concrete backend.

    ``None`` defers to :func:`get_backend`; an explicit name wins over
    every ambient setting.
    """
    if backend is None:
        return get_backend()
    return _validate(backend)


def set_backend(name: Optional[str]) -> None:
    """Install a process-wide backend override (``None`` clears it)."""
    global _override
    _override = None if name is None else _validate(name)


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Context manager scoping a backend override to a ``with`` block."""
    global _override
    prev = _override
    _override = _validate(name)
    try:
        yield
    finally:
        _override = prev
