"""Kernel backend selection for the min-plus algebra.

Four backend names select how every min-plus operation runs:

* ``"exact"`` — the historical pure-:class:`~fractions.Fraction` pairwise
  segment algorithms, bit-identical to every release before the kernel
  layer existed;
* ``"hybrid"`` — the same exact algorithms steered by the vectorized
  float64 screens of :mod:`repro.minplus.kernels`: curves are lowered
  once into packed breakpoint arrays with *outward rounding*, cheap
  certified interval arithmetic settles the overwhelming majority of
  comparisons/prunes, and the exact rational path runs only for the
  queries the float certificate cannot decide.  Hybrid results are
  therefore **identical** (same Fractions, same tie-breaking, same
  exceptions) to exact results — the screens never decide anything, they
  only *skip work whose outcome is already certified*;
* ``"auto"`` (the default) — per-call cost-model dispatch: every
  operation consults the calibrated cost table of
  :mod:`repro.minplus.costmodel` (or its conservative built-in prior)
  and runs under whichever of ``exact``/``hybrid`` is measured cheaper
  for its operand size.  Since both candidates are bit-identical, the
  dispatch decision can only ever cost time, never correctness;
* ``"native"`` — hybrid plus the optional compiled tier of
  :mod:`repro.minplus._native`: the envelope-pair pruning inner loops
  run in a small C library built on first use.  When the toolchain is
  absent or the build fails, native degrades silently to hybrid.

Resolution order for the active backend:

1. an explicit ``backend=`` keyword argument on the API entry point;
2. the innermost :func:`use_backend` context / :func:`set_backend` call;
3. the ``REPRO_BACKEND`` environment variable;
4. the default, ``"auto"`` when NumPy is importable, else ``"exact"``.

NumPy is optional: without it every resolution collapses to ``"exact"``
(requesting ``"hybrid"``/``"native"`` explicitly raises, so
misconfiguration is loud; ``"auto"`` simply routes everything exact).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "BACKENDS",
    "HAVE_NUMPY",
    "get_backend",
    "resolve_backend",
    "op_backend",
    "screens_enabled",
    "native_enabled",
    "native_preferred",
    "set_backend",
    "use_backend",
]

BACKENDS = ("exact", "hybrid", "auto", "native")

try:  # NumPy is an optional accelerator, never a hard dependency.
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    HAVE_NUMPY = False

#: Process-wide override installed by :func:`set_backend` (None = unset).
_override: Optional[str] = None

#: Lazy module refs and interned counter keys for the per-call dispatch
#: path — :func:`op_backend` sits on every operation, so it must not pay
#: module lookups or f-string formatting on a hot tiny-curve loop.
_costmodel = None
_perf = None
_dispatch_keys: dict = {}


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    if name in ("hybrid", "native") and not HAVE_NUMPY:
        raise RuntimeError(
            f"backend {name!r} requires numpy, which is not importable"
        )
    return name


def get_backend() -> str:
    """The currently active backend name (no keyword argument in play)."""
    if _override is not None:
        return _override
    env = os.environ.get("REPRO_BACKEND")
    if env:
        if env not in BACKENDS:
            raise ValueError(
                f"REPRO_BACKEND={env!r} is not one of {BACKENDS}"
            )
        if env != "exact" and not HAVE_NUMPY:
            return "exact"
        return env
    return "auto" if HAVE_NUMPY else "exact"


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve an API-level ``backend=`` keyword to a concrete backend.

    ``None`` defers to :func:`get_backend`; an explicit name wins over
    every ambient setting.
    """
    if backend is None:
        return get_backend()
    return _validate(backend)


def op_backend(op: str, n: int, backend: Optional[str] = None) -> str:
    """The concrete tier (``"exact"``/``"hybrid"``) one operation runs on.

    Args:
        op: Operation name from :data:`repro.minplus.costmodel.OPS`
            (``conv``/``deconv``/``hdev``/``pinv``).
        n: Operand size — the larger segment count of the two curves.
        backend: Optional API-level override, resolved like
            :func:`resolve_backend`.

    ``exact`` and ``hybrid`` pass through unchanged; ``native`` runs on
    the hybrid tier (its compiled inner loops are engaged inside the
    kernels); ``auto`` asks the cost model which tier is measured
    cheaper at this operand size.  Either answer yields bit-identical
    results, so this decision is purely a matter of speed.
    """
    mode = resolve_backend(backend)
    if mode == "exact" or not HAVE_NUMPY:
        return "exact"
    if mode != "auto":
        return "hybrid"
    global _costmodel, _perf
    if _costmodel is None:
        from repro import perf
        from repro.minplus import costmodel

        _costmodel, _perf = costmodel, perf
    choice = _costmodel.choose(op, n)
    key = _dispatch_keys.get((op, choice))
    if key is None:
        key = _dispatch_keys[(op, choice)] = f"dispatch.{op}.{choice}"
    _perf.record(key)
    return choice


def screens_enabled() -> bool:
    """True iff the ambient backend may use the float64 kernel screens.

    ``auto`` counts: its batched screens (frontier domination, delay and
    backlog sweeps) carry no per-call lowering cost that a tiny operand
    could fail to amortize, so they are engaged whenever NumPy is
    available and the backend is not explicitly ``exact``.
    """
    return HAVE_NUMPY and get_backend() != "exact"


def native_enabled() -> bool:
    """True iff the compiled tier is requested *and* actually loadable."""
    if get_backend() != "native":
        return False
    from repro.minplus import _native

    return _native.available()


def native_preferred(op: str, n: int) -> bool:
    """True iff *this* operation should engage its compiled inner loop.

    Under the explicit ``native`` backend every op with a compiled loop
    uses it (when the library loaded).  Under ``auto``, the cost model
    may pick ``"native"`` for an (op, size) bucket where calibration
    measured the compiled tier fastest — :func:`costmodel.choose_tier`
    only ever answers ``"native"`` after confirming the library is
    available, so no availability re-check is needed on that path.
    """
    mode = get_backend()
    if mode == "native":
        from repro.minplus import _native

        return _native.available()
    if mode != "auto" or not HAVE_NUMPY:
        return False
    global _costmodel, _perf
    if _costmodel is None:
        from repro import perf
        from repro.minplus import costmodel

        _costmodel, _perf = costmodel, perf
    return _costmodel.choose_tier(op, n) == "native"


def set_backend(name: Optional[str]) -> None:
    """Install a process-wide backend override (``None`` clears it)."""
    global _override
    _override = None if name is None else _validate(name)


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Context manager scoping a backend override to a ``with`` block."""
    global _override
    prev = _override
    _override = _validate(name)
    try:
        yield
    finally:
        _override = prev
