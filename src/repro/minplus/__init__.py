"""Exact min-plus algebra on ultimately-affine piecewise-linear curves.

This subpackage is the numerical substrate of the whole library: arrival
curves, service curves, request-bound functions and demand-bound functions
are all :class:`~repro.minplus.curve.Curve` objects, i.e. piecewise-linear
functions on ``[0, oo)`` with finitely many breakpoints, exact rational
coefficients, and an affine tail.

The family of ultimately-affine curves is closed under every operation the
library needs (pointwise min/max/add/sub, min-plus convolution and
deconvolution, monotone closures, deviations) and covers the curve zoo of
the real-time calculus literature once periodic staircases are represented
*finitarily* (exact up to an analysis horizon, tight affine bound beyond) —
the representation choice of Finitary RTC (Guan & Yi, RTSS 2013).
"""

from repro.minplus.backend import (
    BACKENDS,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.minplus.segment import Segment
from repro.minplus.curve import Curve
from repro.minplus.builders import (
    zero,
    constant,
    affine,
    token_bucket,
    rate_latency,
    staircase,
    from_points,
    step,
)
from repro.minplus.convolution import min_plus_conv, min_plus_deconv
from repro.minplus.maxplus import max_plus_conv, is_subadditive, subadditive_closure
from repro.minplus.approximation import (
    upper_approximation,
    lower_approximation,
    approximation_error,
)
from repro.minplus.deviation import (
    horizontal_deviation,
    vertical_deviation,
    lower_pseudo_inverse,
    upper_pseudo_inverse,
    upper_pseudo_inverse_batch,
    first_crossing,
)

__all__ = [
    "BACKENDS",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
    "Segment",
    "Curve",
    "zero",
    "constant",
    "affine",
    "token_bucket",
    "rate_latency",
    "staircase",
    "from_points",
    "step",
    "min_plus_conv",
    "min_plus_deconv",
    "max_plus_conv",
    "is_subadditive",
    "subadditive_closure",
    "upper_approximation",
    "lower_approximation",
    "approximation_error",
    "horizontal_deviation",
    "vertical_deviation",
    "lower_pseudo_inverse",
    "upper_pseudo_inverse",
    "upper_pseudo_inverse_batch",
    "first_crossing",
]
