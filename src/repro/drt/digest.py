"""Structural content digests and diffing of DRT tasks.

Three related mechanisms live here, all feeding the incremental
what-if engine (:mod:`repro.whatif`):

* **Per-element digests** — every job (vertex) and every edge has a
  stable content digest; the whole-task digest used by the persistent
  result cache (:func:`repro.parallel.cache.task_digest`) is *composed*
  from them, so an edit's blast radius can be described in the same
  vocabulary the cache is keyed in.

* **Mutation guard** — the analysis layers memoize aggressively in
  ``task._analysis_cache`` under the documented contract that tasks are
  immutable.  Code that mutates a task in place anyway (poking
  ``task._jobs``/``task._edges``) used to silently receive stale
  frontiers and stale digests.  :func:`guard_cache` compares a cheap
  structural fingerprint against the one recorded at first memoization
  and drops the *entire* cache on mismatch — stale state is
  unrecoverable piecemeal, and recomputation is always sound.

* **Structural diff** — :func:`structural_diff` classifies an edit's
  blast radius: the changed/added/removed vertices and edges, the
  *affected cone* (every vertex whose request tuples can differ between
  the two models), and the untouched remainder whose per-vertex
  frontiers carry over verbatim (:meth:`FrontierExplorer.fork
  <repro.drt.request.FrontierExplorer.fork>`).

The affected cone is the forward-reachability closure, over the union
of both edge sets, of every touched element: changed/added/removed
vertices and the destination endpoints of changed/added/removed edges.
Soundness: a path ending at a vertex outside the cone cannot traverse a
touched vertex or edge (otherwise its endpoint would be forward-
reachable from the touch point and therefore inside the cone), so the
set of paths — and hence the Pareto frontier of request tuples — at
every non-cone vertex is identical in the old and new models.  The cone
is forward-closed by construction, so re-exploration seeded inside it
can never modify a carried frontier.

:func:`backward_cone_digest` is the dual key for *cross-process* reuse:
the request tuples ending at a vertex ``v`` are a pure function of the
subgraph backward-reachable from ``v`` (those are exactly the vertices
and edges any path ending at ``v`` can use), so per-vertex results
cached under this digest stay valid across any edit outside that
backward cone — and across differently-ordered definitions of the same
subgraph, since the digest is canonical (sorted, order-independent).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.drt.model import DRTTask, Edge, Job

__all__ = [
    "vertex_digest",
    "edge_digest",
    "composed_task_digest",
    "model_fingerprint",
    "guard_cache",
    "backward_cone_digest",
    "StructuralDiff",
    "structural_diff",
    "cycles_untouched",
]

#: Cache keys used by this module inside ``task._analysis_cache``.
_FINGERPRINT_KEY = "model_fingerprint"
_BACKWARD_DIGESTS_KEY = "backward_cone_digests"


def vertex_digest(job: Job) -> str:
    """Stable hex digest of one job type's content (name, WCET, deadline)."""
    payload = f"j{job.name}:{job.wcet}:{job.deadline}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def edge_digest(edge: Edge) -> str:
    """Stable hex digest of one edge's content (endpoints, separation)."""
    payload = f"e{edge.src}>{edge.dst}:{edge.separation}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def composed_task_digest(task: DRTTask) -> str:
    """Whole-task digest composed from the per-element digests.

    Covers the name and the per-vertex/per-edge digests *in insertion
    order* — ordering steers exploration tie-breaking, so two
    definitions differing only in element order address different cache
    entries (their results may report different, equally valid,
    critical tuples).  Not memoized here; the memoizing entry point is
    :func:`repro.parallel.cache.task_digest`, which also runs the
    mutation guard.
    """
    h = hashlib.sha256()
    h.update(task.name.encode("utf-8"))
    for job in task.jobs.values():
        h.update(b"|")
        h.update(vertex_digest(job).encode("ascii"))
    for edge in task.edges:
        h.update(b"|")
        h.update(edge_digest(edge).encode("ascii"))
    return h.hexdigest()


def model_fingerprint(task: DRTTask) -> Tuple:
    """A cheap structural fingerprint for in-place mutation detection.

    Jobs and edges are frozen dataclasses with value equality, so the
    fingerprint compares exact rational content (and insertion order)
    without any hashing work.
    """
    return (task.name, tuple(task._jobs.values()), tuple(task._edges))


def guard_cache(task: DRTTask) -> Dict[str, object]:
    """Validate ``task._analysis_cache`` against in-place mutation.

    Records the task's fingerprint on first use.  If the definition has
    changed since — someone mutated ``task._jobs``/``task._edges``
    despite the immutability contract — every memo in the cache
    (content digest, shared frontier explorer, analysis contexts, busy
    windows, ...) is stale, so the whole cache is dropped and a fresh
    fingerprint recorded.  Returns the (possibly cleared) cache dict.
    """
    cache = task._analysis_cache
    current = model_fingerprint(task)
    recorded = cache.get(_FINGERPRINT_KEY)
    if recorded is None:
        cache[_FINGERPRINT_KEY] = current
    elif recorded != current:
        cache.clear()
        cache[_FINGERPRINT_KEY] = current
    return cache


def _backward_reachable(task: DRTTask, vertex: str) -> Set[str]:
    """Vertices from which *vertex* is reachable (including itself)."""
    seen = {vertex}
    stack = [vertex]
    while stack:
        v = stack.pop()
        for e in task.predecessors(v):
            if e.src not in seen:
                seen.add(e.src)
                stack.append(e.src)
    return seen


def backward_cone_digest(task: DRTTask, vertex: str) -> str:
    """Canonical digest of the subgraph that determines *vertex*'s tuples.

    A path ending at ``v`` can only use vertices that reach ``v`` and
    edges between them, so the Pareto frontier at ``v`` (and every bound
    derived from it) is a pure function of that backward-reachable
    subgraph.  Elements are digested in sorted order: the frontier is a
    canonical *set* of non-dominated tuples, independent of definition
    order, so differently-ordered definitions of the same subgraph — and
    edited tasks whose edits lie outside the cone — share the digest.

    Memoized per task (one backward traversal per vertex, guarded
    against mutation).
    """
    cache = guard_cache(task)
    memo = cache.get(_BACKWARD_DIGESTS_KEY)
    if memo is None:
        memo = {}
        cache[_BACKWARD_DIGESTS_KEY] = memo
    hit = memo.get(vertex)
    if hit is not None:
        return hit
    cone = _backward_reachable(task, vertex)
    h = hashlib.sha256()
    h.update(f"v{vertex}".encode("utf-8"))
    for name in sorted(cone):
        h.update(b"|")
        h.update(vertex_digest(task.job(name)).encode("ascii"))
    for edge in sorted(
        (e for e in task._edges if e.dst in cone and e.src in cone),
        key=lambda e: (e.src, e.dst),
    ):
        h.update(b"|")
        h.update(edge_digest(edge).encode("ascii"))
    digest = h.hexdigest()
    memo[vertex] = digest
    return digest


@dataclass(frozen=True)
class StructuralDiff:
    """Blast-radius classification of one model edit (old -> new).

    Attributes:
        added_vertices: Job names present only in the new task.
        removed_vertices: Job names present only in the old task.
        changed_vertices: Job names whose WCET/deadline changed.
        added_edges: ``(src, dst)`` pairs present only in the new task.
        removed_edges: ``(src, dst)`` pairs present only in the old task.
        changed_edges: ``(src, dst)`` pairs whose separation changed.
        affected_cone: Every vertex (of either task) whose request
            tuples may differ between the two models — the forward-
            reachability closure of all touched elements over the union
            of both edge sets.  Forward-closed in both graphs.
        carried_vertices: New-task vertices outside the cone: their
            per-vertex frontiers (and all cached per-vertex results)
            carry over verbatim from the old task.
    """

    added_vertices: FrozenSet[str] = frozenset()
    removed_vertices: FrozenSet[str] = frozenset()
    changed_vertices: FrozenSet[str] = frozenset()
    added_edges: FrozenSet[Tuple[str, str]] = frozenset()
    removed_edges: FrozenSet[Tuple[str, str]] = frozenset()
    changed_edges: FrozenSet[Tuple[str, str]] = frozenset()
    affected_cone: FrozenSet[str] = frozenset()
    carried_vertices: FrozenSet[str] = frozenset()

    @property
    def touched(self) -> bool:
        """True iff the task definitions differ at all."""
        return bool(
            self.added_vertices
            or self.removed_vertices
            or self.changed_vertices
            or self.added_edges
            or self.removed_edges
            or self.changed_edges
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (sorted lists) for the CLI and the wire."""
        return {
            "added_vertices": sorted(self.added_vertices),
            "removed_vertices": sorted(self.removed_vertices),
            "changed_vertices": sorted(self.changed_vertices),
            "added_edges": sorted(list(e) for e in self.added_edges),
            "removed_edges": sorted(list(e) for e in self.removed_edges),
            "changed_edges": sorted(list(e) for e in self.changed_edges),
            "affected_cone": sorted(self.affected_cone),
            "carried_vertices": sorted(self.carried_vertices),
        }


def structural_diff(old: DRTTask, new: DRTTask) -> StructuralDiff:
    """Classify the blast radius of the edit taking *old* to *new*.

    See :class:`StructuralDiff` for the fields and the module docstring
    for the cone-soundness argument.  The diff compares exact content
    (via the per-element value equality the digests also hash), not
    digests, so it never misclassifies on a hash collision.
    """
    old_jobs = old.jobs
    new_jobs = new.jobs
    added_v = frozenset(new_jobs) - frozenset(old_jobs)
    removed_v = frozenset(old_jobs) - frozenset(new_jobs)
    changed_v = frozenset(
        name
        for name in frozenset(old_jobs) & frozenset(new_jobs)
        if old_jobs[name] != new_jobs[name]
    )
    old_edges = {(e.src, e.dst): e for e in old.edges}
    new_edges = {(e.src, e.dst): e for e in new.edges}
    added_e = frozenset(new_edges) - frozenset(old_edges)
    removed_e = frozenset(old_edges) - frozenset(new_edges)
    changed_e = frozenset(
        key
        for key in frozenset(old_edges) & frozenset(new_edges)
        if old_edges[key] != new_edges[key]
    )

    # Seeds: every touched vertex, plus the destination of every touched
    # edge (tuples at an edge's *source* never traverse it).
    seeds: Set[str] = set(added_v) | set(removed_v) | set(changed_v)
    for src, dst in added_e | removed_e | changed_e:
        seeds.add(dst)

    # Forward closure over the union of both successor relations.
    union_succ: Dict[str, Set[str]] = {}
    for edges in (old_edges, new_edges):
        for src, dst in edges:
            union_succ.setdefault(src, set()).add(dst)
    cone: Set[str] = set(seeds)
    stack: List[str] = list(seeds)
    while stack:
        v = stack.pop()
        for w in union_succ.get(v, ()):
            if w not in cone:
                cone.add(w)
                stack.append(w)

    carried = frozenset(new_jobs) - cone
    return StructuralDiff(
        added_vertices=added_v,
        removed_vertices=removed_v,
        changed_vertices=changed_v,
        added_edges=added_e,
        removed_edges=removed_e,
        changed_edges=changed_e,
        affected_cone=frozenset(cone),
        carried_vertices=carried,
    )


def _on_cycle_edge(task: DRTTask, src: str, dst: str) -> bool:
    """True iff the edge ``src -> dst`` lies on some cycle of *task*
    (i.e. ``src`` is forward-reachable from ``dst``)."""
    seen = {dst}
    stack = [dst]
    while stack:
        v = stack.pop()
        if v == src:
            return True
        for e in task.successors(v):
            if e.dst not in seen:
                seen.add(e.dst)
                stack.append(e.dst)
    return False


def _on_cycle_vertex(task: DRTTask, vertex: str) -> bool:
    """True iff *vertex* lies on some cycle of *task* (reaches itself
    through at least one edge)."""
    return any(
        _on_cycle_edge(task, vertex, e.dst)
        for e in task.successors(vertex)
    )


def cycles_untouched(diff: StructuralDiff, old: DRTTask, new: DRTTask) -> bool:
    """True iff the edit provably left the cycle set identical.

    When no touched vertex or edge lies on a cycle in the task it
    belongs to, every cycle of either task consists solely of untouched
    elements with identical parameters — so cycle-derived quantities
    (:func:`~repro.drt.utilization.max_cycle_ratio`, and therefore
    :func:`~repro.drt.utilization.utilization`) are exactly equal and
    the what-if engine carries them across the fork instead of
    re-running the cycle search per edit.
    """
    for v in diff.changed_vertices:
        if _on_cycle_vertex(old, v) or _on_cycle_vertex(new, v):
            return False
    for v in diff.removed_vertices:
        if _on_cycle_vertex(old, v):
            return False
    for v in diff.added_vertices:
        if _on_cycle_vertex(new, v):
            return False
    for src, dst in diff.changed_edges:
        if _on_cycle_edge(old, src, dst) or _on_cycle_edge(new, src, dst):
            return False
    for src, dst in diff.removed_edges:
        if _on_cycle_edge(old, src, dst):
            return False
    for src, dst in diff.added_edges:
        if _on_cycle_edge(new, src, dst):
            return False
    return True
