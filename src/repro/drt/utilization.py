"""Exact long-run utilization of DRT tasks via maximum cycle ratios.

The asymptotic request rate of a DRT task equals the maximum, over the
directed cycles of its graph, of (total WCET on the cycle) / (total edge
separation on the cycle).  We compute it exactly with Lawler's scheme:
repeatedly test a candidate ratio ``lambda`` by searching for a positive
cycle in the graph re-weighted with ``wcet(u) - lambda * separation(u,v)``,
and jump to the exact ratio of any positive cycle found.  Each jump
strictly increases ``lambda`` to a realised cycle ratio, so the iteration
terminates at the maximum.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro._numeric import Q
from repro.drt.model import DRTTask

__all__ = ["max_cycle_ratio", "utilization", "critical_cycle", "linear_request_bound"]


def _positive_cycle(
    task: DRTTask, lam: Fraction
) -> Optional[List[str]]:
    """A cycle with positive weight under ``wcet(u) - lam * sep(u, v)``,
    or None. Bellman-Ford over all vertices simultaneously."""
    names = task.job_names
    dist: Dict[str, Q] = {v: Q(0) for v in names}
    pred: Dict[str, Optional[Tuple[str, str]]] = {v: None for v in names}
    n = len(names)
    updated_vertex: Optional[str] = None
    for _ in range(n):
        updated_vertex = None
        for edge in task.edges:
            w = task.wcet(edge.src) - lam * edge.separation
            cand = dist[edge.src] + w
            if cand > dist[edge.dst]:
                dist[edge.dst] = cand
                pred[edge.dst] = (edge.src, edge.dst)
                updated_vertex = edge.dst
        if updated_vertex is None:
            return None
    # A relaxation in the n-th round implies a positive cycle reachable
    # backwards from the updated vertex.
    v = updated_vertex
    for _ in range(n):
        v = pred[v][0]  # type: ignore[index]
    cycle = [v]
    u = pred[v][0]  # type: ignore[index]
    while u != v:
        cycle.append(u)
        u = pred[u][0]  # type: ignore[index]
    cycle.reverse()
    return cycle


def _cycle_ratio(task: DRTTask, cycle: List[str]) -> Fraction:
    """Work/separation ratio of a vertex cycle (closing edge implied)."""
    work = sum((task.wcet(v) for v in cycle), Q(0))
    sep = Q(0)
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        edge = next(e for e in task.successors(a) if e.dst == b)
        sep += edge.separation
    return work / sep


def max_cycle_ratio(task: DRTTask) -> Fraction:
    """The maximum cycle ratio (0 for acyclic graphs).

    This is the exact long-run request rate: behaviours can sustain work
    arrival at this rate forever but no higher.
    """
    from repro.drt.digest import guard_cache

    cache = guard_cache(task)
    cached = cache.get("max_cycle_ratio")
    if cached is not None:
        return cached  # type: ignore[return-value]
    result = _max_cycle_ratio_uncached(task)
    cache["max_cycle_ratio"] = result
    return result


def _max_cycle_ratio_uncached(task: DRTTask) -> Fraction:
    if not task.has_cycle():
        return Q(0)
    lam = Q(0)
    for _ in range(100000):  # far above any realistic cycle-ratio count
        cycle = _positive_cycle(task, lam)
        if cycle is None:
            return lam
        ratio = _cycle_ratio(task, cycle)
        if ratio <= lam:
            # The detected cycle no longer improves: lam is the maximum.
            return lam
        lam = ratio
    raise AssertionError("max_cycle_ratio did not converge")  # pragma: no cover


def critical_cycle(task: DRTTask) -> Optional[List[str]]:
    """A cycle realising the maximum cycle ratio (None if acyclic)."""
    if not task.has_cycle():
        return None
    rho = max_cycle_ratio(task)
    best: Optional[List[str]] = None
    # Slightly lower the ratio to make the critical cycle positive.
    eps = Q(1, 10**9)
    cycle = _positive_cycle(task, rho - eps)
    if cycle is not None and _cycle_ratio(task, cycle) == rho:
        best = cycle
    return best


def utilization(task: DRTTask) -> Fraction:
    """Alias of :func:`max_cycle_ratio` (long-run processor demand)."""
    return max_cycle_ratio(task)


def linear_request_bound(task: DRTTask) -> Tuple[Fraction, Fraction]:
    """The tight linear bound ``rbf(Delta) <= B + rho * Delta``.

    ``rho`` is the maximum cycle ratio and ``B`` the maximum, over all
    walks ``v0 .. vk`` of the graph, of the *reduced weight*
    ``e(v0) + sum_i (e(vi) - rho * p(v_{i-1}, v_i))``.  Under ``rho`` no
    cycle has positive reduced weight, so the maximum is finite and
    reached after at most ``n`` Bellman relaxation rounds.

    The bound justifies the affine tails of the finitary request/demand
    curves: it is exact in rate, so busy-window horizon iteration always
    terminates when the service's long-run rate exceeds ``rho``.

    Returns:
        ``(B, rho)``.
    """
    from repro.drt.digest import guard_cache

    cache = guard_cache(task)
    cached = cache.get("linear_request_bound")
    if cached is not None:
        return cached  # type: ignore[return-value]
    rho = max_cycle_ratio(task)
    dist: Dict[str, Q] = {v: task.wcet(v) for v in task.job_names}
    n = len(task.job_names)
    for round_no in range(n + 1):
        changed = False
        for edge in task.edges:
            cand = dist[edge.src] + task.wcet(edge.dst) - rho * edge.separation
            if cand > dist[edge.dst]:
                dist[edge.dst] = cand
                changed = True
        if not changed:
            break
    else:  # pragma: no cover - impossible without a positive reduced cycle
        raise AssertionError("linear_request_bound did not stabilise")
    result = (max(dist.values()), rho)
    cache["linear_request_bound"] = result
    return result
