"""Core data model: jobs, edges, and digraph real-time tasks."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro._numeric import Q, NumLike, as_q
from repro.errors import ModelError

__all__ = ["Job", "Edge", "DRTTask", "SporadicTask"]


@dataclass(frozen=True)
class Job:
    """A job type (vertex of a DRT task).

    Attributes:
        name: Unique identifier within the task.
        wcet: Worst-case execution time, > 0.
        deadline: Relative deadline, > 0.  Defaults to the WCET if omitted
            at task construction (callers usually set it explicitly).
    """

    name: str
    wcet: Fraction
    deadline: Fraction

    @staticmethod
    def make(name: str, wcet: NumLike, deadline: Optional[NumLike] = None) -> "Job":
        w = as_q(wcet)
        d = as_q(deadline) if deadline is not None else w
        return Job(name, w, d)


@dataclass(frozen=True)
class Edge:
    """A directed edge with a minimum inter-release separation.

    A behaviour releasing job *src* at time ``t`` may release *dst* no
    earlier than ``t + separation``.
    """

    src: str
    dst: str
    separation: Fraction

    @staticmethod
    def make(src: str, dst: str, separation: NumLike) -> "Edge":
        return Edge(src, dst, as_q(separation))


class DRTTask:
    """A digraph real-time task: the model of structural workload.

    Args:
        name: Task identifier (used in reports and serialisation).
        jobs: The job types (vertices).
        edges: The separation-labelled edges.

    Raises:
        ModelError: on duplicate job names, edges referring to unknown
            jobs, duplicate edges, or non-positive parameters.
    """

    def __init__(self, name: str, jobs: Iterable[Job], edges: Iterable[Edge]):
        self.name = name
        self._jobs: Dict[str, Job] = {}
        for job in jobs:
            if job.name in self._jobs:
                raise ModelError(f"duplicate job name {job.name!r} in task {name!r}")
            if job.wcet <= 0:
                raise ModelError(f"job {job.name!r} has non-positive WCET {job.wcet}")
            if job.deadline <= 0:
                raise ModelError(
                    f"job {job.name!r} has non-positive deadline {job.deadline}"
                )
            self._jobs[job.name] = job
        self._edges: List[Edge] = []
        self._succ: Dict[str, List[Edge]] = {j: [] for j in self._jobs}
        self._pred: Dict[str, List[Edge]] = {j: [] for j in self._jobs}
        seen = set()
        for edge in edges:
            if edge.src not in self._jobs or edge.dst not in self._jobs:
                raise ModelError(
                    f"edge {edge.src!r}->{edge.dst!r} refers to unknown job"
                )
            if edge.separation <= 0:
                raise ModelError(
                    f"edge {edge.src!r}->{edge.dst!r} has non-positive "
                    f"separation {edge.separation}"
                )
            if (edge.src, edge.dst) in seen:
                raise ModelError(f"duplicate edge {edge.src!r}->{edge.dst!r}")
            seen.add((edge.src, edge.dst))
            self._edges.append(edge)
            self._succ[edge.src].append(edge)
            self._pred[edge.dst].append(edge)
        if not self._jobs:
            raise ModelError(f"task {name!r} has no jobs")
        # Memo for derived analysis quantities (max cycle ratio, linear
        # request bound, ...).  The task is immutable after construction,
        # so analyses may cache freely; keyed by analysis name.
        self._analysis_cache: Dict[str, object] = {}

    # -- construction helpers -------------------------------------------

    @staticmethod
    def build(
        name: str,
        jobs: Mapping[str, Tuple[NumLike, NumLike]],
        edges: Sequence[Tuple[str, str, NumLike]],
    ) -> "DRTTask":
        """Compact constructor.

        Args:
            name: Task name.
            jobs: ``{job_name: (wcet, deadline)}``.
            edges: ``[(src, dst, separation), ...]``.
        """
        return DRTTask(
            name,
            [Job.make(n, w, d) for n, (w, d) in jobs.items()],
            [Edge.make(s, t, p) for s, t, p in edges],
        )

    # -- queries ---------------------------------------------------------

    @property
    def jobs(self) -> Dict[str, Job]:
        """Job types by name."""
        return dict(self._jobs)

    @property
    def job_names(self) -> List[str]:
        return list(self._jobs)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def job(self, name: str) -> Job:
        try:
            return self._jobs[name]
        except KeyError:
            raise ModelError(f"task {self.name!r} has no job {name!r}") from None

    def successors(self, name: str) -> List[Edge]:
        """Outgoing edges of job *name*."""
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[Edge]:
        """Incoming edges of job *name*."""
        return list(self._pred[name])

    def wcet(self, name: str) -> Fraction:
        return self.job(name).wcet

    def deadline(self, name: str) -> Fraction:
        return self.job(name).deadline

    @property
    def max_wcet(self) -> Fraction:
        return max(j.wcet for j in self._jobs.values())

    @property
    def min_separation(self) -> Fraction:
        """Smallest edge separation (infinite behaviour pace bound)."""
        if not self._edges:
            raise ModelError(f"task {self.name!r} has no edges")
        return min(e.separation for e in self._edges)

    def has_cycle(self) -> bool:
        """True iff the task graph contains a directed cycle."""
        colors: Dict[str, int] = {}

        def visit(v: str) -> bool:
            colors[v] = 1
            for e in self._succ[v]:
                c = colors.get(e.dst, 0)
                if c == 1:
                    return True
                if c == 0 and visit(e.dst):
                    return True
            colors[v] = 2
            return False

        return any(colors.get(v, 0) == 0 and visit(v) for v in self._jobs)

    def __reduce__(self):
        """Pickle as the task definition alone (name, jobs, edges).

        The analysis cache — contexts, shared frontier explorers,
        memoized derived quantities — is process-local state that can be
        arbitrarily large and holds no information the receiving process
        cannot recompute (or fetch from the persistent result cache), so
        a worker unpickles a task with an empty cache.  Job and edge
        order is preserved exactly: exploration tie-breaking follows
        insertion order, so a pickled copy reproduces bit-identical
        analysis results including reported critical tuples.
        """
        return (DRTTask, (self.name, list(self._jobs.values()), list(self._edges)))

    def __repr__(self) -> str:
        return (
            f"DRTTask({self.name!r}, jobs={len(self._jobs)}, "
            f"edges={len(self._edges)})"
        )


@dataclass(frozen=True)
class SporadicTask:
    """Classical sporadic task: convenience wrapper and baseline model.

    Attributes:
        name: Task identifier.
        wcet: Worst-case execution time.
        period: Minimum inter-release separation.
        deadline: Relative deadline.
    """

    name: str
    wcet: Fraction
    period: Fraction
    deadline: Fraction

    @staticmethod
    def make(
        name: str,
        wcet: NumLike,
        period: NumLike,
        deadline: Optional[NumLike] = None,
    ) -> "SporadicTask":
        w, p = as_q(wcet), as_q(period)
        d = as_q(deadline) if deadline is not None else p
        if w <= 0 or p <= 0 or d <= 0:
            raise ModelError("sporadic task parameters must be positive")
        return SporadicTask(name, w, p, d)

    @property
    def utilization(self) -> Fraction:
        return self.wcet / self.period

    def to_drt(self) -> DRTTask:
        """The equivalent single-vertex, self-loop DRT task."""
        return DRTTask(
            self.name,
            [Job(self.name, self.wcet, self.deadline)],
            [Edge(self.name, self.name, self.period)],
        )
