"""Well-formedness checks for DRT tasks."""

from __future__ import annotations

from typing import List

from repro.drt.model import DRTTask
from repro.errors import ValidationError

__all__ = ["validate_task", "is_constrained_deadline", "reachable_from"]


def is_constrained_deadline(task: DRTTask) -> bool:
    """True iff every job's deadline is at most its minimum outgoing
    separation (so consecutive jobs of one behaviour never have
    overlapping deadline windows).

    Vertices without successors are unconstrained by definition and do not
    affect the result.
    """
    for name, job in task.jobs.items():
        succ = task.successors(name)
        if succ and job.deadline > min(e.separation for e in succ):
            return False
    return True


def reachable_from(task: DRTTask, start: str) -> List[str]:
    """Job names reachable from *start* (including it)."""
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for e in task.successors(v):
            if e.dst not in seen:
                seen.add(e.dst)
                stack.append(e.dst)
    return sorted(seen)


def validate_task(task: DRTTask, require_constrained: bool = False) -> None:
    """Raise :class:`ValidationError` if *task* is malformed.

    The :class:`~repro.drt.model.DRTTask` constructor already enforces
    structural well-formedness (positive parameters, known endpoints);
    this adds the semantic checks used by the analyses:

    * at least one edge (a task without recurrence has trivially bounded
      workload but the delay analyses still accept it — only a warning-
      level condition, not enforced);
    * every job participates in some behaviour of length > 1 or the task
      is a single released job;
    * with ``require_constrained=True``, constrained deadlines (needed by
      the exact demand bound function).

    Args:
        task: Task to check.
        require_constrained: Also require constrained deadlines.
    """
    isolated = [
        name
        for name in task.job_names
        if not task.successors(name) and not task.predecessors(name)
    ]
    if isolated and len(task.job_names) > 1:
        raise ValidationError(
            f"task {task.name!r} has isolated jobs {isolated}; they can "
            "never co-occur with the rest of the graph — split the task"
        )
    if require_constrained and not is_constrained_deadline(task):
        raise ValidationError(
            f"task {task.name!r} does not have constrained deadlines; the "
            "exact demand bound function requires deadline <= min outgoing "
            "separation for every job"
        )
