"""Demand-bound machinery for DRT tasks.

The *demand bound function* ``dbf(Delta)`` is the maximum total WCET of
jobs that a behaviour can both release and have due inside a window of
length ``Delta``.  It is the basis of EDF schedulability on uniprocessors:
a task set is EDF-schedulable on a unit-speed processor iff
``sum_i dbf_i(Delta) <= Delta`` for every window ``Delta``.

For *constrained-deadline* tasks (deadline <= minimum outgoing separation)
the demand of a path is simply its total work with the window ending at
the last job's deadline, which yields the same Pareto-frontier exploration
as the request bound.  For arbitrary deadlines this module computes a
sound over-approximation by stretching the window to cover every counted
job's deadline (``validate_task(..., require_constrained=True)`` gates the
exact variant).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro._numeric import Q, NumLike, as_q
from repro.drt.model import DRTTask
from repro.drt.request import FrontierStats
from repro.drt.validate import is_constrained_deadline
from repro.errors import ModelError
from repro.minplus.curve import Curve
from repro.minplus.segment import Segment

__all__ = ["DemandTuple", "demand_frontier", "dbf_curve", "dbf_value"]


@dataclass(frozen=True)
class DemandTuple:
    """An abstract path prefix for demand accounting.

    Attributes:
        window: Smallest window length covering release 0 to the latest
            deadline among counted jobs.
        work: Total WCET of the counted jobs.
        vertex: End vertex of the abstracted paths.
    """

    window: Fraction
    work: Fraction
    vertex: str


def demand_frontier(
    task: DRTTask,
    horizon: NumLike,
    stats: Optional[FrontierStats] = None,
) -> List[DemandTuple]:
    """Non-dominated demand tuples with ``window <= horizon``.

    The exploration walks abstract path prefixes tracking
    ``(release of last job, max deadline so far, total work)`` and prunes
    per end vertex on the Pareto order (smaller window, larger work).

    For constrained-deadline tasks the max deadline is always the last
    job's, making the result exact; otherwise it is a sound upper bound.
    """
    hz = as_q(horizon)
    if hz < 0:
        raise ModelError("horizon must be non-negative")
    # State: (max absolute deadline = window, release time of last job,
    # work, vertex).  Domination needs all three numeric components:
    # a state is dominated only by one with a smaller-or-equal window,
    # a smaller-or-equal last release (its extensions release no later)
    # and at least as much work.  Pruning on (window, work) alone is
    # unsound: a larger-window state with an *earlier* last release can
    # extend to strictly more demand.
    frontiers: Dict[str, _DemandStates] = {
        v: _DemandStates() for v in task.job_names
    }
    heap: List[Tuple[Q, int, Q, Q, str]] = []
    out: List[DemandTuple] = []
    tiebreak = 0
    for v in task.job_names:
        job = task.job(v)
        heapq.heappush(heap, (job.deadline, tiebreak, Q(0), job.wcet, v))
        tiebreak += 1
    while heap:
        window, _, time, work, vertex = heapq.heappop(heap)
        if stats is not None:
            stats.expanded += 1
        if window > hz:
            continue
        front = frontiers[vertex]
        if front.dominated(window, time, work):
            if stats is not None:
                stats.pruned += 1
            continue
        front.insert(window, time, work)
        if stats is not None:
            stats.kept += 1
        for edge in task.successors(vertex):
            t2 = time + edge.separation
            job2 = task.job(edge.dst)
            dl2 = max(window, t2 + job2.deadline)
            w2 = work + job2.wcet
            if dl2 > hz:
                continue
            if frontiers[edge.dst].dominated(dl2, t2, w2):
                if stats is not None:
                    stats.pruned += 1
                continue
            heapq.heappush(heap, (dl2, tiebreak, t2, w2, edge.dst))
            tiebreak += 1
    for v, front in frontiers.items():
        out.extend(DemandTuple(w_, wk, v) for w_, _, wk in front.states)
    out.sort(key=lambda d: (d.window, -d.work))
    return out


class _DemandStates:
    """Pareto store of (window, time, work) triples for one vertex.

    A triple is dominated by one with window' <= window, time' <= time
    and work' >= work.  Linear scan is sufficient: the store holds only
    mutually non-dominated states.
    """

    __slots__ = ("states",)

    def __init__(self) -> None:
        self.states: List[Tuple[Q, Q, Q]] = []

    def dominated(self, window: Q, time: Q, work: Q) -> bool:
        return any(
            w0 <= window and t0 <= time and k0 >= work
            for w0, t0, k0 in self.states
        )

    def insert(self, window: Q, time: Q, work: Q) -> None:
        self.states = [
            (w0, t0, k0)
            for w0, t0, k0 in self.states
            if not (window <= w0 and time <= t0 and work >= k0)
        ]
        self.states.append((window, time, work))


def dbf_value(task: DRTTask, delta: NumLike) -> Fraction:
    """``dbf(delta)``: maximum demand in a window of length *delta*
    (0 when no job fits its deadline inside the window)."""
    d = as_q(delta)
    tuples = demand_frontier(task, d)
    if not tuples:
        return Q(0)
    return max(t.work for t in tuples)


def dbf_curve(task: DRTTask, horizon: NumLike) -> Curve:
    """The demand bound function as a finitary staircase curve.

    Exact on ``[0, horizon)`` for constrained-deadline tasks; sound upper
    bound otherwise.  Beyond the horizon the curve continues with the
    subadditive-style tail bound derived from the request bound (demand
    never exceeds requests): value and slope are taken from
    :func:`repro.drt.request.rbf_curve`'s tail.
    """
    hz = as_q(horizon)
    tuples = demand_frontier(task, hz)
    segs: List[Segment] = [Segment(Q(0), Q(0), Q(0))]
    best = Q(0)
    for t in tuples:
        if t.work > best:
            if segs and segs[-1].start == t.window:
                segs[-1] = Segment(t.window, t.work, Q(0))
            else:
                segs.append(Segment(t.window, t.work, Q(0)))
            best = t.work
    # dbf <= rbf pointwise, so the exact linear request bound is a sound
    # tail for the demand curve as well (and exact in rate).
    from repro.drt.utilization import linear_request_bound

    burst, rho = linear_request_bound(task)
    segs = [s for s in segs if s.start < hz]
    if not segs:
        segs = [Segment(Q(0), Q(0), Q(0))] if hz > 0 else []
    if hz > 0:
        segs.append(Segment(hz, burst + rho * hz, rho))
    else:
        segs = [Segment(Q(0), burst, rho)]
    return Curve(segs)
