"""The digraph real-time task (DRT) model of structural workload.

A DRT task is a directed graph whose vertices are job types (worst-case
execution time, relative deadline) and whose edges carry minimum
inter-release separations.  A *behaviour* of the task walks the graph,
releasing the visited jobs no closer together than the edge separations.
This is the canonical model of *structural* real-time workload: branches
express modes, cycles express recurrence, and chains express bursts.

The subpackage provides the model itself, well-formedness validation,
path semantics, the request/demand bound machinery with Stigge-style
path abstraction (Pareto domination pruning), exact long-run utilization
via maximum cycle ratios, and standard model transformations.
"""

from repro.drt.model import Job, Edge, DRTTask, SporadicTask
from repro.drt.digest import (
    vertex_digest,
    edge_digest,
    composed_task_digest,
    backward_cone_digest,
    StructuralDiff,
    structural_diff,
)
from repro.drt.paths import Path, iter_paths, enumerate_paths
from repro.drt.request import RequestTuple, request_frontier, rbf_curve, rbf_value
from repro.drt.demand import DemandTuple, demand_frontier, dbf_curve, dbf_value
from repro.drt.utilization import max_cycle_ratio, utilization, linear_request_bound
from repro.drt.validate import validate_task, is_constrained_deadline
from repro.drt.transform import (
    sporadic_abstraction,
    scale_wcets,
    arrival_curve_of,
)

__all__ = [
    "Job",
    "Edge",
    "DRTTask",
    "SporadicTask",
    "vertex_digest",
    "edge_digest",
    "composed_task_digest",
    "backward_cone_digest",
    "StructuralDiff",
    "structural_diff",
    "Path",
    "iter_paths",
    "enumerate_paths",
    "RequestTuple",
    "request_frontier",
    "rbf_curve",
    "rbf_value",
    "DemandTuple",
    "demand_frontier",
    "dbf_curve",
    "dbf_value",
    "max_cycle_ratio",
    "utilization",
    "linear_request_bound",
    "validate_task",
    "is_constrained_deadline",
    "sporadic_abstraction",
    "scale_wcets",
    "arrival_curve_of",
]
