"""Model transformations and abstractions of DRT tasks."""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro._numeric import Q, NumLike, as_q
from repro.drt.model import DRTTask, Edge, Job, SporadicTask
from repro.drt.request import rbf_curve
from repro.errors import ModelError
from repro.minplus.curve import Curve

__all__ = ["sporadic_abstraction", "scale_wcets", "arrival_curve_of"]


def sporadic_abstraction(task: DRTTask) -> SporadicTask:
    """The classical sporadic over-approximation of a structural task.

    Every behaviour of *task* is also a behaviour of the sporadic task
    with WCET ``max_v e(v)``, period ``min_e p(e)`` and deadline
    ``min_v d(v)``: it releases at least as much work at least as often
    with at least as tight deadlines.  This is the coarsest standard
    baseline — it discards all structure — and anchors the pessimism
    spectrum in the evaluation.

    Raises:
        ModelError: if the task has no edges (no recurrence to abstract).
    """
    if not task.edges:
        raise ModelError(
            f"task {task.name!r} has no edges; sporadic abstraction needs "
            "a recurrent task"
        )
    return SporadicTask(
        name=f"{task.name}@sporadic",
        wcet=task.max_wcet,
        period=task.min_separation,
        deadline=min(j.deadline for j in task.jobs.values()),
    )


def scale_wcets(task: DRTTask, factor: NumLike) -> DRTTask:
    """A copy of *task* with every WCET multiplied by *factor* > 0.

    Deadlines and separations are unchanged; used by workload generators
    to hit a target utilization exactly.
    """
    f = as_q(factor)
    if f <= 0:
        raise ModelError("scale factor must be positive")
    return DRTTask(
        task.name,
        [Job(j.name, j.wcet * f, j.deadline) for j in task.jobs.values()],
        task.edges,
    )


def arrival_curve_of(task: DRTTask, horizon: NumLike) -> Curve:
    """The arrival-curve abstraction of a structural task.

    This is exactly the request bound function rendered as a curve: the
    information interface between structural workload and classical
    real-time calculus.  Everything the RTC baseline knows about the task
    is in this curve — which is the point of the paper's comparison: the
    curve mixes incompatible paths, the structural analysis does not.
    """
    return rbf_curve(task, horizon)
