"""Concrete path semantics of DRT tasks.

A *path* is a finite walk through the task graph together with its
earliest-release schedule: the first job at time 0 and every following job
exactly one edge-separation after its predecessor.  Earliest releases are
the densest legal behaviour, hence the worst case for request/demand
bounds; the brute-force reference analyses and the simulator build on this
module.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List, Optional, Sequence, Tuple

from repro._numeric import Q, NumLike, as_q
from repro.drt.model import DRTTask

__all__ = ["Path", "iter_paths", "enumerate_paths"]


@dataclass(frozen=True)
class Path:
    """A walk through a DRT task with earliest release times.

    Attributes:
        vertices: Visited job names, in order.
        releases: Earliest release times; ``releases[0] == 0``.
        work: Cumulative WCET after each job (``work[i]`` includes job i).
    """

    vertices: Tuple[str, ...]
    releases: Tuple[Fraction, ...]
    work: Tuple[Fraction, ...]

    @property
    def length(self) -> int:
        return len(self.vertices)

    @property
    def span(self) -> Fraction:
        """Time between first and last release."""
        return self.releases[-1]

    @property
    def total_work(self) -> Fraction:
        return self.work[-1]

    def extended(self, task: DRTTask, dst: str, separation: Q) -> "Path":
        """The path extended by one edge to *dst*."""
        t = self.releases[-1] + separation
        w = self.work[-1] + task.wcet(dst)
        return Path(
            self.vertices + (dst,),
            self.releases + (t,),
            self.work + (w,),
        )

    def __repr__(self) -> str:
        return "Path[" + " -> ".join(
            f"{v}@{t}" for v, t in zip(self.vertices, self.releases)
        ) + "]"


def _initial(task: DRTTask, vertex: str) -> Path:
    return Path((vertex,), (Q(0),), (task.wcet(vertex),))


def iter_paths(
    task: DRTTask,
    horizon: NumLike,
    start: Optional[str] = None,
    max_length: Optional[int] = None,
) -> Iterator[Path]:
    """Yield every path whose span is at most *horizon*.

    Paths are produced by depth-first search from *start* (or from every
    vertex when omitted).  The number of paths is exponential in the
    horizon; this is the brute-force reference against which the abstracted
    analyses are tested on small instances.

    Args:
        task: The DRT task.
        horizon: Maximum span (last earliest-release time).
        start: Optional single start vertex.
        max_length: Optional cap on the number of jobs per path.
    """
    hz = as_q(horizon)
    starts = [start] if start is not None else task.job_names
    for v in starts:
        stack: List[Path] = [_initial(task, v)]
        while stack:
            path = stack.pop()
            yield path
            if max_length is not None and path.length >= max_length:
                continue
            last = path.vertices[-1]
            for edge in task.successors(last):
                t = path.releases[-1] + edge.separation
                if t <= hz:
                    stack.append(path.extended(task, edge.dst, edge.separation))


def enumerate_paths(
    task: DRTTask,
    horizon: NumLike,
    start: Optional[str] = None,
    max_length: Optional[int] = None,
) -> List[Path]:
    """Materialised :func:`iter_paths` (reference analyses, tests)."""
    return list(iter_paths(task, horizon, start=start, max_length=max_length))
