"""Crash-safe checkpointing of frontier-exploration state.

A long structural analysis is one resumable loop: the
:class:`~repro.drt.request.FrontierExplorer` pops tuples best-first and
its instance state (heap, per-vertex Pareto frontiers, deferred
successors, event logs) is, at every pop boundary, exactly the state a
fresh run would have reached.  This module serializes that state —
frontier + sorted-prefix cache + the active budget meter's remaining
allowance — **through the content-addressed result cache**, so a worker
that dies mid-``analyze_many`` leaves a checkpoint behind that the
failover owner (sharing the cache directory, or receiving the entry via
cache migration) restores and *resumes* instead of recomputing, with
bounds bit-identical to an uninterrupted run: exploration is
deterministic, and the snapshot preserves the tie-break counter and
every event log.

Checkpointing is **off by default** (zero cost beyond one falsy test
per pop).  Enable it with ``REPRO_CHECKPOINT_STRIDE=<pops>`` or
:func:`set_checkpoint_stride`; every *stride* expansions the explorer
snapshots itself under a key derived from its task digest (plus the
library version and backend, like every cache entry).  Snapshots write
atomically via :func:`repro.parallel.cache.put` — a torn write is
evicted on load and the resume degrades to a cold start, never a wrong
answer.
"""

from __future__ import annotations

import os
from math import inf, nextafter
from typing import Dict, Optional

from repro.resilience.budget import active_meter

__all__ = [
    "checkpoint_stride",
    "set_checkpoint_stride",
    "checkpoint_key",
    "snapshot_explorer",
    "restore_explorer",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_payload",
    "resume_budget",
]

#: Snapshot payload schema version (bump to orphan old checkpoints).
SNAPSHOT_VERSION = 1

_stride: Optional[int] = None  # None = unresolved from the environment


def checkpoint_stride() -> int:
    """Expansions between snapshots; 0 disables checkpointing."""
    global _stride
    if _stride is None:
        raw = os.environ.get("REPRO_CHECKPOINT_STRIDE", "0")
        try:
            _stride = max(0, int(raw))
        except ValueError:
            _stride = 0
    return _stride


def set_checkpoint_stride(stride: Optional[int]) -> None:
    """Override the stride for this process (None re-reads the env)."""
    global _stride
    _stride = None if stride is None else max(0, int(stride))


def checkpoint_key(task) -> str:
    """The cache key a task's exploration checkpoint lives under."""
    from repro.parallel import cache as result_cache

    return result_cache.analysis_key(
        "frontier_ckpt", [result_cache.task_digest(task)]
    )


def snapshot_explorer(ex) -> Dict[str, object]:
    """A picklable deep snapshot of one explorer's exploration state.

    Safe to take mid-``extend_to`` (the natural checkpoint boundary is
    between pops): the heap and deferred lists carry the in-flight
    extension, and ``_explored`` still names the last *completed*
    horizon, so a restored explorer re-enters ``extend_to`` exactly
    where the original stood.
    """
    from repro.parallel import cache as result_cache

    meter = active_meter()
    return {
        "version": SNAPSHOT_VERSION,
        "task_digest": result_cache.task_digest(ex.task),
        "prune": ex.prune,
        "frontiers": {
            v: (list(f.times), list(f.works))
            for v, f in ex._frontiers.items()
        },
        "heap": list(ex._heap),
        "deferred": list(ex._deferred),
        "tiebreak": ex._tiebreak,
        "explored": ex._explored,
        "all": list(ex._all),
        "all_times": list(ex._all_times),
        "pop_times": list(ex._pop_times),
        "popdom_times": list(ex._popdom_times),
        "evict_times": list(ex._evict_times),
        "evict_counts": list(ex._evict_counts),
        "pushprune_times": list(ex._pushprune_times),
        "pushprune_sorted": ex._pushprune_sorted,
        "new_kept_since_query": ex._new_kept_since_query,
        "sorted_hz": ex._sorted_hz,
        "sorted_times": list(ex._sorted_times),
        "sorted_tuples": list(ex._sorted_tuples),
        "fork_cone": ex._fork_cone,
        "fork_carried_hz": ex._fork_carried_hz,
        "fork_carried": list(ex._fork_carried),
        "fork_carried_times": list(ex._fork_carried_times),
        "meter": None
        if meter is None
        else {
            "remaining_expansions": meter.remaining_expansions(),
            "remaining_seconds": meter.remaining_seconds(),
            "max_segments": meter.max_segments(),
        },
    }


def restore_explorer(task, state: Dict[str, object]):
    """Rebuild a :class:`FrontierExplorer` for *task* from a snapshot.

    The float screen mirrors are recomputed from the exact rationals
    (deterministically), so a snapshot taken under one backend restores
    exactly under any other.

    Raises:
        ValueError: when the snapshot does not match *task*'s content
            digest or its schema version — stale checkpoints are a
            mismatch, never a silent wrong resume.
    """
    from repro.drt.request import FrontierExplorer, _VertexFrontier
    from repro.parallel import cache as result_cache

    if state.get("version") != SNAPSHOT_VERSION:
        raise ValueError("checkpoint schema version mismatch")
    if state.get("task_digest") != result_cache.task_digest(task):
        raise ValueError("checkpoint belongs to a different task definition")
    ex = FrontierExplorer.__new__(FrontierExplorer)
    ex.task = task
    ex.prune = bool(state["prune"])
    frontiers = {}
    for v, (times, works) in state["frontiers"].items():
        f = _VertexFrontier()
        f.times = list(times)
        f.works = list(works)
        for t, w in zip(f.times, f.works):
            tf, wf = float(t), float(w)
            f.times_lo.append(nextafter(tf, -inf))
            f.times_hi.append(nextafter(tf, inf))
            f.works_lo.append(nextafter(wf, -inf))
            f.works_hi.append(nextafter(wf, inf))
        frontiers[v] = f
    ex._frontiers = frontiers
    ex._heap = list(state["heap"])
    ex._deferred = list(state["deferred"])
    ex._tiebreak = int(state["tiebreak"])
    ex._explored = state["explored"]
    ex._all = list(state["all"])
    ex._all_times = list(state["all_times"])
    ex._pop_times = list(state["pop_times"])
    ex._popdom_times = list(state["popdom_times"])
    ex._evict_times = list(state["evict_times"])
    ex._evict_counts = list(state["evict_counts"])
    ex._pushprune_times = list(state["pushprune_times"])
    ex._pushprune_sorted = bool(state["pushprune_sorted"])
    ex._new_kept_since_query = int(state["new_kept_since_query"])
    ex._sorted_hz = state["sorted_hz"]
    ex._sorted_times = list(state["sorted_times"])
    ex._sorted_tuples = list(state["sorted_tuples"])
    ex._fork_cone = state["fork_cone"]
    ex._fork_carried_hz = state["fork_carried_hz"]
    ex._fork_carried = list(state["fork_carried"])
    ex._fork_carried_times = list(state["fork_carried_times"])
    return ex


def save_checkpoint(ex) -> None:
    """Persist *ex*'s snapshot through the content-addressed cache.

    A no-op when the cache is disabled.  Write failures degrade to a
    no-op inside :func:`repro.parallel.cache.put` — checkpoints are an
    accelerator for recovery, never a correctness dependency.
    """
    from repro import perf
    from repro.parallel import cache as result_cache

    if not result_cache.is_enabled():
        return
    result_cache.put(checkpoint_key(ex.task), snapshot_explorer(ex))
    perf.record("frontier.checkpoints_saved")


def load_checkpoint_payload(task) -> Optional[Dict[str, object]]:
    """The task's raw checkpoint payload, or None."""
    from repro.parallel import cache as result_cache

    if not result_cache.is_enabled():
        return None
    payload = result_cache.get(checkpoint_key(task))
    return payload if isinstance(payload, dict) else None


def load_checkpoint(task):
    """The task's checkpointed explorer, or None.

    Stale or mismatched checkpoints (different task content, older
    schema) are treated as absent.
    """
    from repro import perf

    payload = load_checkpoint_payload(task)
    if payload is None:
        return None
    try:
        ex = restore_explorer(task, payload)
    except (ValueError, KeyError, TypeError):
        return None
    perf.record("frontier.checkpoints_restored")
    return ex


def resume_budget(payload: Dict[str, object]):
    """A :class:`~repro.resilience.budget.Budget` honouring the
    checkpointed meter's *remaining* allowance, or None.

    A resumed analysis must not be granted the original budget afresh —
    work done before the crash already consumed part of it.
    """
    from repro.resilience.budget import Budget

    meter = payload.get("meter")
    if not isinstance(meter, dict):
        return None
    remaining = meter.get("remaining_expansions")
    seconds = meter.get("remaining_seconds")
    if remaining is None and seconds is None:
        return None
    return Budget(
        deadline=None if seconds is None else max(float(seconds), 1e-6),
        max_expansions=remaining,
        max_segments=meter.get("max_segments"),
    )
