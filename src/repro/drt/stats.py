"""Structural statistics of DRT task graphs.

Experiment reports and generator audits need graph-shape numbers next to
the timing numbers: connectivity, branching, cyclicity, and the derived
timing aggregates (utilization, linear bound, constrained-deadline
status).  Built on :mod:`networkx` for the graph algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

import networkx as nx

from repro._numeric import Q
from repro.drt.model import DRTTask
from repro.drt.utilization import linear_request_bound, max_cycle_ratio
from repro.drt.validate import is_constrained_deadline

__all__ = ["TaskStats", "task_statistics", "to_networkx"]


def to_networkx(task: DRTTask) -> "nx.DiGraph":
    """The task graph as a :class:`networkx.DiGraph`.

    Vertices carry ``wcet``/``deadline`` attributes, edges carry
    ``separation`` — ready for any graph algorithm or external layout.
    """
    g = nx.DiGraph()
    for name, job in task.jobs.items():
        g.add_node(name, wcet=job.wcet, deadline=job.deadline)
    for e in task.edges:
        g.add_edge(e.src, e.dst, separation=e.separation)
    return g


@dataclass(frozen=True)
class TaskStats:
    """Shape and timing aggregates of one task.

    Attributes:
        vertices: Number of job types.
        edges: Number of separation edges.
        mean_out_degree: Edges per vertex (branching factor).
        strongly_connected_components: SCC count (1 = fully recurrent).
        largest_scc: Size of the biggest SCC.
        cyclic: Whether any behaviour recurs forever.
        utilization: Exact maximum cycle ratio.
        burst: The ``B*`` of the linear request bound.
        constrained_deadlines: Deadline <= min outgoing separation
            everywhere.
        wcet_range: (min, max) WCET.
        separation_range: (min, max) edge separation.
    """

    vertices: int
    edges: int
    mean_out_degree: float
    strongly_connected_components: int
    largest_scc: int
    cyclic: bool
    utilization: Fraction
    burst: Fraction
    constrained_deadlines: bool
    wcet_range: tuple
    separation_range: tuple


def task_statistics(task: DRTTask) -> TaskStats:
    """Compute :class:`TaskStats` for *task*."""
    g = to_networkx(task)
    sccs = [c for c in nx.strongly_connected_components(g)]
    burst, rho = linear_request_bound(task)
    wcets = [j.wcet for j in task.jobs.values()]
    seps = [e.separation for e in task.edges]
    return TaskStats(
        vertices=len(task.jobs),
        edges=len(task.edges),
        mean_out_degree=len(task.edges) / len(task.jobs),
        strongly_connected_components=len(sccs),
        largest_scc=max((len(c) for c in sccs), default=0),
        cyclic=task.has_cycle(),
        utilization=rho,
        burst=burst,
        constrained_deadlines=is_constrained_deadline(task),
        wcet_range=(min(wcets), max(wcets)),
        separation_range=(min(seps), max(seps)) if seps else (Q(0), Q(0)),
    )
