"""Request-bound machinery: path abstraction with domination pruning.

The *request bound function* ``rbf(Delta)`` of a DRT task is the maximum
total WCET any behaviour can release inside a closed time window of length
``Delta``.  Computing it by enumerating paths is exponential; the path
abstraction of Stigge et al. keeps, per end vertex, only the Pareto
frontier of *request tuples* ``(t, w)`` — "some path ends with a job
released at time ``t`` having released total work ``w``" — pruning every
tuple dominated by an earlier-and-heavier one.  The same frontier is the
raw material of the structural delay analysis in :mod:`repro.core.delay`,
which is what makes that analysis strictly more precise than the
arrival-curve abstraction: it never mixes ``t`` from one path with ``w``
from another.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro._numeric import Q, NumLike, as_q
from repro.drt.model import DRTTask
from repro.errors import ModelError
from repro.minplus.curve import Curve
from repro.minplus.segment import Segment

__all__ = [
    "RequestTuple",
    "request_frontier",
    "rbf_curve",
    "rbf_value",
    "FrontierStats",
]


@dataclass(frozen=True)
class RequestTuple:
    """An abstract path prefix.

    Attributes:
        time: Earliest release time of the last job (path span).
        work: Total WCET released by the path, including the last job.
        vertex: End vertex of the abstracted paths.
    """

    time: Fraction
    work: Fraction
    vertex: str


@dataclass
class FrontierStats:
    """Exploration statistics (used by the pruning ablation experiment)."""

    expanded: int = 0
    kept: int = 0
    pruned: int = 0


class _VertexFrontier:
    """Pareto frontier of (time, work) tuples for one end vertex.

    Invariant: times strictly increasing and works strictly increasing —
    a tuple is kept only if no other tuple has smaller-or-equal time and
    greater-or-equal work.
    """

    __slots__ = ("times", "works")

    def __init__(self) -> None:
        self.times: List[Q] = []
        self.works: List[Q] = []

    def dominated(self, time: Q, work: Q) -> bool:
        """True iff (time, work) is dominated by a stored tuple."""
        # Find tuples with stored_time <= time; the best of them has the
        # largest work (works increase with times).
        idx = bisect_right(self.times, time) - 1
        return idx >= 0 and self.works[idx] >= work

    def insert(self, time: Q, work: Q) -> List[Tuple[Q, Q]]:
        """Insert a non-dominated tuple; return the tuples it evicts."""
        idx = bisect_left(self.times, time)
        evicted: List[Tuple[Q, Q]] = []
        # Remove stored tuples dominated by the new one: time' >= time
        # and work' <= work.
        j = idx
        while j < len(self.times) and self.works[j] <= work:
            evicted.append((self.times[j], self.works[j]))
            j += 1
        del self.times[idx:j]
        del self.works[idx:j]
        self.times.insert(idx, time)
        self.works.insert(idx, work)
        return evicted

    def tuples(self, vertex: str) -> List[RequestTuple]:
        return [
            RequestTuple(t, w, vertex) for t, w in zip(self.times, self.works)
        ]


def request_frontier(
    task: DRTTask,
    horizon: NumLike,
    prune: bool = True,
    stats: Optional[FrontierStats] = None,
) -> List[RequestTuple]:
    """All non-dominated request tuples with ``time <= horizon``.

    Explores abstract path prefixes best-first (by release time) from
    every start vertex, pruning tuples dominated at their end vertex.
    With ``prune=False`` the exploration keeps every distinct tuple (used
    by the pruning ablation; exponentially slower).

    Args:
        task: The structural workload.
        horizon: Window bound; tuples beyond it are not expanded.
        prune: Apply Pareto domination pruning (default).
        stats: Optional mutable statistics collector.

    Returns:
        Request tuples sorted by time (ties by work descending), Pareto-
        merged per vertex but *not* across vertices — the per-vertex
        structure is what downstream structural analysis needs.
    """
    hz = as_q(horizon)
    if hz < 0:
        raise ModelError("horizon must be non-negative")
    frontiers: Dict[str, _VertexFrontier] = {v: _VertexFrontier() for v in task.job_names}
    # Heap of (time, tiebreak, work, vertex); best-first by release time so
    # that domination checks see the strongest tuples early.
    heap: List[Tuple[Q, int, Q, str]] = []
    tiebreak = 0
    all_tuples: List[RequestTuple] = []
    for v in task.job_names:
        heapq.heappush(heap, (Q(0), tiebreak, task.wcet(v), v))
        tiebreak += 1
    while heap:
        time, _, work, vertex = heapq.heappop(heap)
        if stats is not None:
            stats.expanded += 1
        if prune:
            front = frontiers[vertex]
            if front.dominated(time, work):
                if stats is not None:
                    stats.pruned += 1
                continue
            front.insert(time, work)
        else:
            all_tuples.append(RequestTuple(time, work, vertex))
        if stats is not None:
            stats.kept += 1
        for edge in task.successors(vertex):
            t2 = time + edge.separation
            if t2 > hz:
                continue
            w2 = work + task.wcet(edge.dst)
            if prune and frontiers[edge.dst].dominated(t2, w2):
                if stats is not None:
                    stats.pruned += 1
                continue
            heapq.heappush(heap, (t2, tiebreak, w2, edge.dst))
            tiebreak += 1
    if prune:
        all_tuples = [
            t for v, f in frontiers.items() for t in f.tuples(v)
        ]
    all_tuples.sort(key=lambda r: (r.time, -r.work))
    return all_tuples


def rbf_value(task: DRTTask, delta: NumLike) -> Fraction:
    """Exact ``rbf(delta)``: maximum work in a closed window of length
    *delta* (the window start coincides with some job release)."""
    d = as_q(delta)
    tuples = request_frontier(task, d)
    return max(t.work for t in tuples)


def rbf_curve(task: DRTTask, horizon: NumLike) -> Curve:
    """The request bound function as a finitary staircase curve.

    Exact on ``[0, horizon)``.  Beyond the horizon the curve continues
    with the exact linear bound ``rbf(Delta) <= B + rho * Delta`` of
    :func:`repro.drt.utilization.linear_request_bound` — sound for every
    window length and exact in the long-run rate ``rho`` (the maximum
    cycle ratio), so busy-window horizon iteration terminates whenever
    the service outpaces the workload.

    Args:
        task: The structural workload.
        horizon: Exactness horizon (must be >= 0).
    """
    hz = as_q(horizon)
    tuples = request_frontier(task, hz)
    # Merge per-vertex frontiers into the global staircase: cumulative max
    # of work by time.
    segs: List[Segment] = []
    best = Q(0)
    for t in tuples:
        if t.work > best:
            if segs and segs[-1].start == t.time:
                segs[-1] = Segment(t.time, t.work, Q(0))
            else:
                segs.append(Segment(t.time, t.work, Q(0)))
            best = t.work
    if not segs or segs[0].start != 0:
        raise ModelError("request frontier must contain a tuple at time 0")
    # Tight affine tail from the exact linear bound rbf(D) <= B + rho*D
    # (see repro.drt.utilization.linear_request_bound): sound for every
    # window length and exact in rate, which guarantees that busy-window
    # horizon iteration terminates whenever the service rate exceeds rho.
    from repro.drt.utilization import linear_request_bound

    burst, rho = linear_request_bound(task)
    segs = [s for s in segs if s.start < hz]
    # B + rho*hz >= rbf(hz) >= every exact step value, so the curve stays
    # nondecreasing across the tail joint.
    segs.append(Segment(hz, burst + rho * hz, rho))
    return Curve(segs)
