"""Request-bound machinery: path abstraction with domination pruning.

The *request bound function* ``rbf(Delta)`` of a DRT task is the maximum
total WCET any behaviour can release inside a closed time window of length
``Delta``.  Computing it by enumerating paths is exponential; the path
abstraction of Stigge et al. keeps, per end vertex, only the Pareto
frontier of *request tuples* ``(t, w)`` — "some path ends with a job
released at time ``t`` having released total work ``w``" — pruning every
tuple dominated by an earlier-and-heavier one.  The same frontier is the
raw material of the structural delay analysis in :mod:`repro.core.delay`,
which is what makes that analysis strictly more precise than the
arrival-curve abstraction: it never mixes ``t`` from one path with ``w``
from another.

Exploration is *incremental*: a :class:`FrontierExplorer` keeps its heap,
its per-vertex frontiers and the successors deferred beyond the explored
horizon between calls, so ``extend_to(h2)`` after ``extend_to(h1)`` only
expands the tuples in ``(h1, h2]``.  Each task caches one shared explorer
(tasks are immutable), which every analysis layer — busy-window horizon
iteration, delay, backlog, EDF, multi-task aggregation — reuses instead
of re-exploring from scratch.  Queries truncated at any ``h`` below the
explored horizon are exact: exploration is best-first by release time, so
the frontier state restricted to ``time <= h`` coincides with a
from-scratch run at horizon ``h`` (evictions only ever happen among
equal-time tuples, which both runs process identically).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from fractions import Fraction
from math import inf, nextafter
from typing import Dict, List, Optional, Tuple

from repro import perf
from repro._numeric import Q, NumLike, as_q
from repro.drt import snapshot as _snapshot
from repro.drt.model import DRTTask
from repro.errors import ModelError
from repro.resilience.budget import checkpoint
from repro.minplus import backend as backend_mod
from repro.minplus.curve import Curve
from repro.minplus.segment import Segment

__all__ = [
    "RequestTuple",
    "FrontierExplorer",
    "frontier_explorer",
    "request_frontier",
    "rbf_curve",
    "rbf_value",
    "FrontierStats",
]


@dataclass(frozen=True)
class RequestTuple:
    """An abstract path prefix.

    Attributes:
        time: Earliest release time of the last job (path span).
        work: Total WCET released by the path, including the last job.
        vertex: End vertex of the abstracted paths.
    """

    time: Fraction
    work: Fraction
    vertex: str


@dataclass
class FrontierStats:
    """Exploration statistics (used by the pruning ablation experiment).

    The invariant ``expanded == kept + pruned`` holds at every horizon:
    a generated tuple is either on the frontier (*kept*) or was discarded
    (*pruned*) — at the pre-push domination check, at the pop check, or by
    a later eviction from :meth:`_VertexFrontier.insert`.
    """

    expanded: int = 0
    kept: int = 0
    pruned: int = 0

    def add(self, other: "FrontierStats") -> None:
        """Accumulate *other* into this collector."""
        self.expanded += other.expanded
        self.kept += other.kept
        self.pruned += other.pruned


class _VertexFrontier:
    """Pareto frontier of (time, work) tuples for one end vertex.

    Invariant: times strictly increasing and works strictly increasing —
    a tuple is kept only if no other tuple has smaller-or-equal time and
    greater-or-equal work.
    """

    __slots__ = ("times", "works", "times_lo", "times_hi", "works_lo", "works_hi")

    def __init__(self) -> None:
        self.times: List[Q] = []
        self.works: List[Q] = []
        # Outward-rounded float64 mirrors (lower/upper per coordinate):
        # certified fast-path for the domination compare, exact rational
        # comparisons only within one-ulp ties (hybrid backend).
        self.times_lo: List[float] = []
        self.times_hi: List[float] = []
        self.works_lo: List[float] = []
        self.works_hi: List[float] = []

    def dominated(self, time: Q, work: Q) -> bool:
        """True iff (time, work) is dominated by a stored tuple."""
        if backend_mod.screens_enabled():
            # Certified float screen.  The answer is works[idx*] >= work
            # for idx* = last index with times[idx*] <= time; works
            # increase with times, so any certainly-earlier entry with
            # certainly-enough work proves domination, and the last
            # possibly-earlier entry with certainly-too-little work
            # refutes it.
            tf = float(time)
            t_lo, t_hi = nextafter(tf, -inf), nextafter(tf, inf)
            i1 = bisect_right(self.times_lo, t_hi) - 1
            if i1 < 0:
                perf.record("kernel.screen_hits")
                return False
            wf = float(work)
            w_lo, w_hi = nextafter(wf, -inf), nextafter(wf, inf)
            if self.works_hi[i1] < w_lo:
                perf.record("kernel.screen_hits")
                return False
            i0 = bisect_right(self.times_hi, t_lo) - 1
            if i0 >= 0 and self.works_lo[i0] >= w_hi:
                perf.record("kernel.screen_hits")
                return True
            perf.record("kernel.exact_fallbacks")
        # Find tuples with stored_time <= time; the best of them has the
        # largest work (works increase with times).
        idx = bisect_right(self.times, time) - 1
        return idx >= 0 and self.works[idx] >= work

    def insert(self, time: Q, work: Q) -> int:
        """Insert a non-dominated tuple; return how many it evicts."""
        idx = bisect_left(self.times, time)
        # Remove stored tuples dominated by the new one: time' >= time
        # and work' <= work.
        j = idx
        while j < len(self.times) and self.works[j] <= work:
            j += 1
        evicted = j - idx
        del self.times[idx:j]
        del self.works[idx:j]
        self.times.insert(idx, time)
        self.works.insert(idx, work)
        tf, wf = float(time), float(work)
        del self.times_lo[idx:j]
        del self.times_hi[idx:j]
        del self.works_lo[idx:j]
        del self.works_hi[idx:j]
        self.times_lo.insert(idx, nextafter(tf, -inf))
        self.times_hi.insert(idx, nextafter(tf, inf))
        self.works_lo.insert(idx, nextafter(wf, -inf))
        self.works_hi.insert(idx, nextafter(wf, inf))
        return evicted

    def tuples(self, vertex: str, horizon: Optional[Q] = None) -> List[RequestTuple]:
        hi = (
            len(self.times)
            if horizon is None
            else bisect_right(self.times, horizon)
        )
        return [
            RequestTuple(t, w, vertex)
            for t, w in zip(self.times[:hi], self.works[:hi])
        ]

    def copy(self) -> "_VertexFrontier":
        """An independent copy (used when forking an explorer)."""
        out = _VertexFrontier()
        out.times = self.times[:]
        out.works = self.works[:]
        out.times_lo = self.times_lo[:]
        out.times_hi = self.times_hi[:]
        out.works_lo = self.works_lo[:]
        out.works_hi = self.works_hi[:]
        return out


class FrontierExplorer:
    """Resumable best-first exploration of a task's request tuples.

    The explorer owns the exploration state — heap, per-vertex Pareto
    frontiers, and successors deferred beyond the explored horizon — and
    extends it monotonically: :meth:`extend_to` expands exactly the tuples
    the requested horizon adds.  All query methods (:meth:`tuples`,
    :meth:`rbf_curve`, :meth:`stats_at`) accept any horizon at or below
    the explored one and answer exactly as a from-scratch run at that
    horizon would.

    A shared per-task instance is available via :func:`frontier_explorer`;
    unpruned explorations (the ablation) always use a private instance.

    Args:
        task: The structural workload (immutable after construction).
        prune: Apply Pareto domination pruning (default).  Disabling it
            keeps every distinct tuple — exponentially slower, for the
            pruning-ablation experiment only.
    """

    __slots__ = (
        "task",
        "prune",
        "_frontiers",
        "_heap",
        "_deferred",
        "_tiebreak",
        "_explored",
        "_all",
        "_all_times",
        "_pop_times",
        "_popdom_times",
        "_evict_times",
        "_evict_counts",
        "_pushprune_times",
        "_pushprune_sorted",
        "_new_kept_since_query",
        "_sorted_hz",
        "_sorted_times",
        "_sorted_tuples",
        "_fork_cone",
        "_fork_carried_hz",
        "_fork_carried",
        "_fork_carried_times",
    )

    def __init__(self, task: DRTTask, prune: bool = True) -> None:
        self.task = task
        self.prune = prune
        self._frontiers: Dict[str, _VertexFrontier] = {
            v: _VertexFrontier() for v in task.job_names
        }
        # Heap of (time, tiebreak, work, vertex); best-first by release
        # time so that domination checks see the strongest tuples early.
        self._heap: List[Tuple[Q, int, Q, str]] = []
        # Successors released beyond the explored horizon, waiting for a
        # later extend_to to reactivate them (same entry layout).
        self._deferred: List[Tuple[Q, int, Q, str]] = []
        self._tiebreak = 0
        self._explored: Optional[Q] = None
        # Unpruned mode keeps every popped tuple (time-ordered).
        self._all: List[RequestTuple] = []
        self._all_times: List[Q] = []
        # Event logs for exact truncated statistics; every list is
        # nondecreasing except _pushprune_times (sorted on demand).
        self._pop_times: List[Q] = []
        self._popdom_times: List[Q] = []
        self._evict_times: List[Q] = []
        self._evict_counts: List[int] = []
        self._pushprune_times: List[Q] = []
        self._pushprune_sorted = True
        self._new_kept_since_query = 0
        # Sorted-tuples prefix cache: once explored past a horizon, every
        # tuple at or below it is final (pops are time-ordered and evict
        # only equal-time entries), so queries at smaller horizons slice
        # an exact prefix instead of re-merging and re-sorting.
        self._sorted_hz: Optional[Q] = None
        self._sorted_times: List[Q] = []
        self._sorted_tuples: List[RequestTuple] = []
        # Fork-carried sorted prefix (set by :meth:`fork`): the source
        # explorer's sorted merge restricted to carried vertices.  The
        # cone is forward-closed, so below the carried horizon the
        # non-cone frontiers are final and a keyed two-way merge with
        # the cone's (small) tuple set replaces the full re-sort.
        self._fork_cone: Optional[frozenset] = None
        self._fork_carried_hz: Optional[Q] = None
        self._fork_carried: List[RequestTuple] = []
        self._fork_carried_times: List[Q] = []
        for v in task.job_names:
            heapq.heappush(
                self._heap, (Q(0), self._tiebreak, task.wcet(v), v)
            )
            self._tiebreak += 1

    # -- exploration -----------------------------------------------------

    @property
    def explored_horizon(self) -> Optional[Fraction]:
        """Largest horizon explored so far (None before the first call)."""
        return self._explored

    def extend_to(self, horizon: NumLike) -> None:
        """Ensure every request tuple with ``time <= horizon`` is explored.

        Re-entrant and monotone: horizons at or below the explored one
        return immediately; larger ones resume from the saved heap and the
        deferred successors instead of restarting.
        """
        hz = as_q(horizon)
        if hz < 0:
            raise ModelError("horizon must be non-negative")
        perf.record("frontier.extend_calls")
        if self._explored is not None and hz <= self._explored:
            perf.record("frontier.extend_noop")
            return
        task = self.task
        heap = self._heap
        deferred = self._deferred
        frontiers = self._frontiers
        # Event-log sizes before the sweep; counters are recorded once at
        # the end (per-tuple perf calls would dominate the hot loop).
        pops0 = len(self._pop_times)
        popdom0 = len(self._popdom_times)
        evicted0 = sum(self._evict_counts)
        pushprune0 = len(self._pushprune_times)
        # Crash-safe checkpointing (off by default): every *stride* pops
        # the full exploration state snapshots through the result cache,
        # so a worker crash mid-analysis resumes instead of recomputing.
        ckpt_stride = _snapshot.checkpoint_stride()
        ckpt_countdown = ckpt_stride
        # Reactivate deferred successors that the new horizon admits.
        while deferred and deferred[0][0] <= hz:
            heapq.heappush(heap, heapq.heappop(deferred))
        while heap:
            if ckpt_stride:
                ckpt_countdown -= 1
                if ckpt_countdown <= 0:
                    ckpt_countdown = ckpt_stride
                    _snapshot.save_checkpoint(self)
            # Cooperative budget checkpoint: one charged unit per tuple
            # expansion.  A BudgetExhaustedError unwinding here leaves
            # the explorer resumable (``_explored`` is only advanced on
            # completion; the heap and frontiers keep partial progress).
            checkpoint()
            time, _, work, vertex = heapq.heappop(heap)
            self._pop_times.append(time)
            if self.prune:
                front = frontiers[vertex]
                if front.dominated(time, work):
                    self._popdom_times.append(time)
                    continue
                evicted = front.insert(time, work)
                if evicted:
                    # Evictions happen only among equal-time tuples (pops
                    # are time-ordered), so the event time is exact.
                    self._evict_times.append(time)
                    self._evict_counts.append(evicted)
                self._new_kept_since_query += 1 - evicted
            else:
                self._all.append(RequestTuple(time, work, vertex))
                self._all_times.append(time)
                self._new_kept_since_query += 1
            for edge in task.successors(vertex):
                t2 = time + edge.separation
                w2 = work + task.wcet(edge.dst)
                if t2 > hz:
                    heapq.heappush(
                        deferred, (t2, self._tiebreak, w2, edge.dst)
                    )
                    self._tiebreak += 1
                    continue
                if self.prune and frontiers[edge.dst].dominated(t2, w2):
                    self._pushprune_times.append(t2)
                    self._pushprune_sorted = False
                    continue
                heapq.heappush(heap, (t2, self._tiebreak, w2, edge.dst))
                self._tiebreak += 1
        self._explored = hz
        pops = len(self._pop_times) - pops0
        pushpruned = len(self._pushprune_times) - pushprune0
        pruned = (
            (len(self._popdom_times) - popdom0)
            + (sum(self._evict_counts) - evicted0)
            + pushpruned
        )
        perf.record("frontier.tuples_expanded", pops + pushpruned)
        perf.record("frontier.tuples_pruned", pruned)

    # -- forking ---------------------------------------------------------

    def fork(self, new_task: DRTTask, diff) -> "FrontierExplorer":
        """A new explorer for *new_task* carrying this one's exploration.

        *diff* is the :class:`~repro.drt.digest.StructuralDiff` taking
        this explorer's task to *new_task*.  Per-vertex frontiers and
        deferred successors whose generating paths end outside the
        diff's affected cone are valid in both models (no path reaching
        them traverses a touched vertex or edge), so they carry over
        verbatim; only the cone re-expands:

        * cone vertices restart from their time-0 origin tuples, and
        * every carried frontier tuple is re-extended along the new
          graph's edges into the cone (extensions of *dominated* tuples
          are themselves dominated, so extending only the Pareto-kept
          tuples is exhaustive).

        All seeds land in the deferred set with the explored horizon
        reset, so the forked explorer answers any horizon exactly as a
        from-scratch exploration of *new_task* would — frontier content
        is canonical (the set of non-dominated tuples per vertex), and
        the cone is forward-closed, so cone re-expansion never touches
        a carried frontier.  Only :meth:`stats_at` differs: a forked
        explorer's event log counts the *incremental* work, which is
        the quantity the what-if engine reports.

        A mid-extension explorer (budget exhaustion left tuples on the
        heap) has no consistent carried state, and an unexplored one
        has nothing to carry; both fall back to a fresh explorer.
        """
        if not self.prune:
            raise ModelError("only pruned explorers can be forked")
        cone = set(diff.affected_cone)
        if self._explored is None or self._heap:
            return FrontierExplorer(new_task)
        missing = [
            v
            for v in new_task.job_names
            if v not in cone and v not in self._frontiers
        ]
        if missing:
            raise ModelError(
                f"diff marks {missing} as carried but the source explorer "
                "never had them (stale diff?)"
            )
        new = FrontierExplorer.__new__(FrontierExplorer)
        new.task = new_task
        new.prune = True
        new._heap = []
        new._deferred = []
        new._tiebreak = self._tiebreak
        new._explored = None
        new._all = []
        new._all_times = []
        new._pop_times = []
        new._popdom_times = []
        new._evict_times = []
        new._evict_counts = []
        new._pushprune_times = []
        new._pushprune_sorted = True
        new._new_kept_since_query = 0
        new._sorted_hz = None
        new._sorted_times = []
        new._sorted_tuples = []
        new._fork_cone = None
        new._fork_carried_hz = None
        new._fork_carried = []
        new._fork_carried_times = []
        # Frontiers in new_task.job_names order: tuples() iterates this
        # dict, so query ordering (and critical-tuple tie-breaking)
        # matches a from-scratch explorer of new_task exactly.
        new._frontiers = {
            v: (
                _VertexFrontier()
                if v in cone
                else self._frontiers[v].copy()
            )
            for v in new_task.job_names
        }
        # Carry the source's sorted-tuples prefix, restricted to carried
        # vertices.  Sound because (a) below the source's sorted horizon
        # the carried frontiers are final — the forward-closed cone
        # re-expands only into itself, and every carried deferred entry
        # lies beyond the source's explored horizon — and (b) the global
        # query order is (time, -work, vertex position), which the
        # filtered prefix preserves whenever the carried vertex sequence
        # is the same in both models (the guard below).
        if self._sorted_hz is not None and tuple(
            v for v in self.task.job_names if v not in cone
        ) == tuple(v for v in new_task.job_names if v not in cone):
            new._fork_cone = frozenset(cone)
            new._fork_carried_hz = self._sorted_hz
            new._fork_carried = [
                t for t in self._sorted_tuples if t.vertex not in cone
            ]
            new._fork_carried_times = [t.time for t in new._fork_carried]
        # Carried beyond-horizon successors: their generating paths end
        # outside the cone (a push into vertex v comes from a pop at a
        # predecessor u; u in the cone would put v in the cone too).
        for entry in self._deferred:
            if entry[3] not in cone:
                new._deferred.append(entry)
        # Cone origin seeds.
        for v in new_task.job_names:
            if v in cone:
                new._deferred.append(
                    (Q(0), new._tiebreak, new_task.wcet(v), v)
                )
                new._tiebreak += 1
        # Carried-prefix crossings into the cone along new-graph edges.
        for u in new_task.job_names:
            if u in cone:
                continue
            front = new._frontiers[u]
            for edge in new_task.successors(u):
                if edge.dst not in cone:
                    continue
                w_dst = new_task.wcet(edge.dst)
                for t, w in zip(front.times, front.works):
                    new._deferred.append(
                        (t + edge.separation, new._tiebreak, w + w_dst, edge.dst)
                    )
                    new._tiebreak += 1
        heapq.heapify(new._deferred)
        perf.record("frontier.forks")
        perf.record(
            "frontier.fork_carried_tuples",
            sum(
                len(f.times)
                for v, f in new._frontiers.items()
                if v not in cone
            ),
        )
        return new

    # -- queries ---------------------------------------------------------

    def _merge_carried(
        self,
        carried: List[RequestTuple],
        hi: int,
        fresh: List[RequestTuple],
    ) -> List[RequestTuple]:
        """Stable two-way merge of the carried prefix (first *hi*
        entries) with the re-expanded cone's sorted tuples.

        Both inputs are sorted by ``(time, -work, vertex position)``;
        full-key ties across the lists fall back to the vertex's
        position in the frontier order — exactly where the full stable
        sort would place them.  Times are compared first and almost
        always decide, so no per-element key tuples are built.
        """
        out: List[RequestTuple] = []
        append = out.append
        vidx: Optional[Dict[str, int]] = None
        i = j = 0
        nb = len(fresh)
        while i < hi and j < nb:
            ra = carried[i]
            rb = fresh[j]
            if ra.time < rb.time:
                append(ra)
                i += 1
            elif rb.time < ra.time:
                append(rb)
                j += 1
            elif ra.work > rb.work:
                append(ra)
                i += 1
            elif rb.work > ra.work:
                append(rb)
                j += 1
            else:
                if vidx is None:
                    vidx = {v: k for k, v in enumerate(self._frontiers)}
                if vidx[ra.vertex] <= vidx[rb.vertex]:
                    append(ra)
                    i += 1
                else:
                    append(rb)
                    j += 1
        out.extend(carried[i:hi])
        out.extend(fresh[j:])
        return out

    def tuples(self, horizon: NumLike) -> List[RequestTuple]:
        """All non-dominated request tuples with ``time <= horizon``.

        Extends the exploration if needed.  Returns tuples sorted by time
        (ties by work descending), Pareto-merged per vertex but *not*
        across vertices — the per-vertex structure is what downstream
        structural analysis needs.
        """
        hz = as_q(horizon)
        self.extend_to(hz)
        if self.prune:
            if self._sorted_hz is not None and hz <= self._sorted_hz:
                # Exact prefix of the cached merge: tuples at or below
                # the cached horizon are final (see the cache comment in
                # ``__init__``), and time is the primary sort key.
                hi = bisect_right(self._sorted_times, hz)
                out = self._sorted_tuples[:hi]
                perf.record("frontier.tuples_sliced")
            elif (
                self._fork_carried_hz is not None
                and hz <= self._fork_carried_hz
            ):
                # Forked explorer below the carried horizon: merge the
                # carried sorted prefix with the re-expanded cone's
                # tuples.  The merge key appends the vertex's position so
                # cross-vertex ties land exactly where the full stable
                # sort would put them.
                hi = bisect_right(self._fork_carried_times, hz)
                cone = self._fork_cone
                fresh = [
                    t
                    for v, f in self._frontiers.items()
                    if v in cone
                    for t in f.tuples(v, hz)
                ]
                fresh.sort(key=lambda r: (r.time, -r.work))
                out = self._merge_carried(
                    self._fork_carried, hi, fresh
                )
                self._sorted_hz = hz
                self._sorted_tuples = out
                self._sorted_times = [r.time for r in out]
                out = list(out)
                perf.record("frontier.tuples_fork_merged")
            else:
                out = [
                    t
                    for v, f in self._frontiers.items()
                    for t in f.tuples(v, hz)
                ]
                out.sort(key=lambda r: (r.time, -r.work))
                self._sorted_hz = hz
                self._sorted_tuples = out
                self._sorted_times = [r.time for r in out]
                out = list(out)
        else:
            hi = bisect_right(self._all_times, hz)
            out = list(self._all[:hi])
            out.sort(key=lambda r: (r.time, -r.work))
        served = len(out)
        reused = max(0, served - self._new_kept_since_query)
        self._new_kept_since_query = 0
        perf.record("frontier.tuples_served", served)
        perf.record("frontier.tuples_reused", reused)
        return out

    def stats_at(self, horizon: NumLike) -> FrontierStats:
        """Exploration statistics truncated at *horizon*.

        Exactly the statistics a from-scratch exploration at *horizon*
        would report: exploration is best-first by time, so the event
        stream restricted to times at or below *horizon* is identical.
        """
        hz = as_q(horizon)
        self.extend_to(hz)
        pops = bisect_right(self._pop_times, hz)
        popdom = bisect_right(self._popdom_times, hz)
        evict_events = bisect_right(self._evict_times, hz)
        evicted = sum(self._evict_counts[:evict_events])
        if not self._pushprune_sorted:
            self._pushprune_times.sort()
            self._pushprune_sorted = True
        pushpruned = bisect_right(self._pushprune_times, hz)
        return FrontierStats(
            expanded=pops + pushpruned,
            kept=pops - popdom - evicted,
            pruned=popdom + evicted + pushpruned,
        )

    def rbf_curve(self, horizon: NumLike) -> Curve:
        """The request bound function as a finitary staircase curve.

        Exact on ``[0, horizon)`` with the tight affine tail of
        :func:`repro.drt.utilization.linear_request_bound` beyond — see
        :func:`rbf_curve` (module level) for the full contract.
        """
        hz = as_q(horizon)
        tuples = self.tuples(hz)
        # Merge per-vertex frontiers into the global staircase: cumulative
        # max of work by time.
        segs: List[Segment] = []
        best = Q(0)
        for t in tuples:
            if t.work > best:
                if segs and segs[-1].start == t.time:
                    segs[-1] = Segment(t.time, t.work, Q(0))
                else:
                    segs.append(Segment(t.time, t.work, Q(0)))
                best = t.work
        if not segs or segs[0].start != 0:
            raise ModelError("request frontier must contain a tuple at time 0")
        # Tight affine tail from the exact linear bound rbf(D) <= B + rho*D
        # (see repro.drt.utilization.linear_request_bound): sound for every
        # window length and exact in rate, which guarantees that busy-window
        # horizon iteration terminates whenever the service rate exceeds rho.
        from repro.drt.utilization import linear_request_bound

        burst, rho = linear_request_bound(self.task)
        segs = [s for s in segs if s.start < hz]
        # B + rho*hz >= rbf(hz) >= every exact step value, so the curve
        # stays nondecreasing across the tail joint.
        segs.append(Segment(hz, burst + rho * hz, rho))
        return Curve(segs)


def frontier_explorer(task: DRTTask) -> FrontierExplorer:
    """The task's shared (pruned) explorer, created on first use.

    Tasks are immutable after construction, so the exploration state
    normally never needs invalidation; it simply grows monotonically
    with the largest horizon any analysis has asked for.  Code that
    mutates a task in place anyway used to silently receive an explorer
    for the *old* definition; :func:`repro.drt.digest.guard_cache`
    detects the mutation via a structural fingerprint and drops the
    whole memo cache (explorer, digests, analysis contexts) so the next
    access rebuilds against the current definition.
    """
    from repro.drt.digest import guard_cache

    cache = guard_cache(task)
    ex = cache.get("frontier_explorer")
    if ex is None:
        # With checkpointing enabled, a crashed process's snapshot in
        # the shared result cache resumes here on the failover owner —
        # deterministic exploration makes the resumed bounds
        # bit-identical to an uninterrupted run.
        if _snapshot.checkpoint_stride():
            ex = _snapshot.load_checkpoint(task)
        if ex is None:
            ex = FrontierExplorer(task, prune=True)
        cache["frontier_explorer"] = ex
    return ex


def request_frontier(
    task: DRTTask,
    horizon: NumLike,
    prune: bool = True,
    stats: Optional[FrontierStats] = None,
    reuse: bool = True,
) -> List[RequestTuple]:
    """All non-dominated request tuples with ``time <= horizon``.

    Served from the task's shared :class:`FrontierExplorer` (pruned mode),
    so repeated calls — busy-window iterations, the delay/backlog/EDF
    analyses, multi-task aggregation — reuse exploration state instead of
    restarting.  With ``prune=False`` a private explorer keeps every
    distinct tuple (used by the pruning ablation; exponentially slower).

    Args:
        task: The structural workload.
        horizon: Window bound; tuples beyond it are not expanded.
        prune: Apply Pareto domination pruning (default).
        stats: Optional mutable statistics collector; receives the
            statistics of a from-scratch exploration at *horizon* (the
            truncated view of the shared explorer's event log).
        reuse: Serve from the task's shared explorer (default).
            ``False`` explores a private one from scratch — the
            benchmarks' historical cost model; same result.

    Returns:
        Request tuples sorted by time (ties by work descending), Pareto-
        merged per vertex but *not* across vertices.
    """
    hz = as_q(horizon)
    if hz < 0:
        raise ModelError("horizon must be non-negative")
    if prune:
        ex = frontier_explorer(task) if reuse else FrontierExplorer(task)
    else:
        ex = FrontierExplorer(task, prune=False)
    out = ex.tuples(hz)
    if stats is not None:
        stats.add(ex.stats_at(hz))
    return out


def rbf_value(task: DRTTask, delta: NumLike, reuse: bool = True) -> Fraction:
    """Exact ``rbf(delta)``: maximum work in a closed window of length
    *delta* (the window start coincides with some job release)."""
    d = as_q(delta)
    tuples = request_frontier(task, d, reuse=reuse)
    return max(t.work for t in tuples)


def rbf_curve(task: DRTTask, horizon: NumLike, reuse: bool = True) -> Curve:
    """The request bound function as a finitary staircase curve.

    Exact on ``[0, horizon)``.  Beyond the horizon the curve continues
    with the exact linear bound ``rbf(Delta) <= B + rho * Delta`` of
    :func:`repro.drt.utilization.linear_request_bound` — sound for every
    window length and exact in the long-run rate ``rho`` (the maximum
    cycle ratio), so busy-window horizon iteration terminates whenever
    the service outpaces the workload.

    Served from the task's shared :class:`FrontierExplorer`: growing
    horizons (the busy-window doubling loop, multi-task aggregation)
    only pay for the exploration the new horizon adds.

    Args:
        task: The structural workload.
        horizon: Exactness horizon (must be >= 0).
        reuse: Serve from the task's shared explorer (default);
            ``False`` explores a private one from scratch.
    """
    hz = as_q(horizon)
    if hz < 0:
        raise ModelError("horizon must be non-negative")
    ex = frontier_explorer(task) if reuse else FrontierExplorer(task)
    return ex.rbf_curve(hz)
