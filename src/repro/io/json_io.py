"""JSON serialisation of tasks and curves.

Rationals are stored as strings (``"3/10"``) so round-trips are exact.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Union

from repro._numeric import Q
from repro.drt.model import DRTTask, Edge, Job
from repro.drt.validate import validate_task
from repro.errors import SerializationError
from repro.minplus.curve import Curve
from repro.minplus.segment import Segment

__all__ = [
    "task_to_dict",
    "task_from_dict",
    "curve_to_dict",
    "curve_from_dict",
    "save_task",
    "load_task",
]


def _q_out(q: Fraction) -> str:
    return str(q)


def _q_in(s: Any) -> Fraction:
    try:
        return Fraction(str(s))
    except (ValueError, ZeroDivisionError) as exc:
        raise SerializationError(f"invalid rational {s!r}") from exc


def task_to_dict(task: DRTTask) -> Dict[str, Any]:
    """Plain-dict form of a DRT task (stable key order)."""
    return {
        "name": task.name,
        "jobs": {
            name: {"wcet": _q_out(j.wcet), "deadline": _q_out(j.deadline)}
            for name, j in sorted(task.jobs.items())
        },
        "edges": [
            {"src": e.src, "dst": e.dst, "separation": _q_out(e.separation)}
            for e in task.edges
        ],
    }


def task_from_dict(data: Dict[str, Any], validate: bool = True) -> DRTTask:
    """Inverse of :func:`task_to_dict`.

    Args:
        data: Plain-dict task form.
        validate: Run :func:`repro.drt.validate.validate_task` on the
            result (default), so malformed inputs fail fast here — with
            an error naming the offending job — instead of deep inside a
            later analysis.

    Raises:
        SerializationError: on missing keys or malformed numbers.
        ValidationError: when *validate* is set and the task is
            semantically malformed (e.g. isolated jobs).
    """
    try:
        jobs = [
            Job(name, _q_in(spec["wcet"]), _q_in(spec["deadline"]))
            for name, spec in data["jobs"].items()
        ]
        edges = [
            Edge(e["src"], e["dst"], _q_in(e["separation"]))
            for e in data["edges"]
        ]
        task = DRTTask(data["name"], jobs, edges)
    except KeyError as exc:
        raise SerializationError(f"missing key {exc} in task JSON") from exc
    if validate:
        validate_task(task)
    return task


def curve_to_dict(curve: Curve) -> Dict[str, Any]:
    """Plain-dict form of a curve (segment list)."""
    return {
        "segments": [
            {
                "start": _q_out(s.start),
                "value": _q_out(s.value),
                "slope": _q_out(s.slope),
            }
            for s in curve.segments
        ]
    }


def curve_from_dict(data: Dict[str, Any]) -> Curve:
    """Inverse of :func:`curve_to_dict`."""
    try:
        return Curve(
            Segment(_q_in(s["start"]), _q_in(s["value"]), _q_in(s["slope"]))
            for s in data["segments"]
        )
    except KeyError as exc:
        raise SerializationError(f"missing key {exc} in curve JSON") from exc


def save_task(task: DRTTask, path: Union[str, Path]) -> None:
    """Write *task* to *path* as JSON."""
    Path(path).write_text(json.dumps(task_to_dict(task), indent=2))


def load_task(path: Union[str, Path], validate: bool = True) -> DRTTask:
    """Read a task from a JSON file (validated by default)."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read task from {path}: {exc}") from exc
    return task_from_dict(data, validate=validate)
