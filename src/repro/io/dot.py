"""Graphviz DOT export of DRT tasks (for documentation and debugging)."""

from __future__ import annotations

from repro.drt.model import DRTTask

__all__ = ["task_to_dot"]


def task_to_dot(task: DRTTask) -> str:
    """DOT source for the task graph.

    Vertices are labelled ``name (wcet, deadline)``, edges with their
    minimum separations.
    """
    lines = [f'digraph "{task.name}" {{', "  rankdir=LR;"]
    for name, job in sorted(task.jobs.items()):
        lines.append(
            f'  "{name}" [label="{name}\\n<{job.wcet}, {job.deadline}>"];'
        )
    for e in task.edges:
        lines.append(f'  "{e.src}" -> "{e.dst}" [label="{e.separation}"];')
    lines.append("}")
    return "\n".join(lines)
