"""Graphviz DOT import/export of DRT tasks.

Export serves documentation and debugging; import round-trips the exact
subset :func:`task_to_dot` emits (quoted vertices labelled
``name\\n<wcet, deadline>``, edges labelled with their minimum
separations), so task graphs can be kept in DOT form next to the figures
generated from them.  Loaded tasks are validated by default —
a malformed file fails fast with an error naming the offending job or
edge instead of surfacing deep inside an analysis.
"""

from __future__ import annotations

import re
from fractions import Fraction
from pathlib import Path
from typing import Union

from repro.drt.model import DRTTask, Edge, Job
from repro.drt.validate import validate_task
from repro.errors import SerializationError

__all__ = [
    "task_to_dot",
    "save_task_dot",
    "task_from_dot",
    "load_task_dot",
    "require_declared_endpoints",
]


def require_declared_endpoints(edges, declared, what: str = "job") -> None:
    """Reject edges naming vertices the DOT source never declared.

    Args:
        edges: ``(src, dst, line_no)`` triples in source order.
        declared: The set of declared vertex names.
        what: Noun for the error message (``"job"`` for DRT tasks,
            ``"vertex"`` for :mod:`repro.mp` DAG tasks).

    Raises:
        SerializationError: naming the first offending edge *and its
            line* — before task construction, where the same mistake
            would otherwise surface without any source location.
    """
    for src, dst, line_no in edges:
        for endpoint in (src, dst):
            if endpoint not in declared:
                raise SerializationError(
                    f'line {line_no}: edge "{src}" -> "{dst}" names '
                    f"undeclared {what} {endpoint!r}"
                )


def task_to_dot(task: DRTTask) -> str:
    """DOT source for the task graph.

    Vertices are labelled ``name (wcet, deadline)``, edges with their
    minimum separations.
    """
    lines = [f'digraph "{task.name}" {{', "  rankdir=LR;"]
    for name, job in sorted(task.jobs.items()):
        lines.append(
            f'  "{name}" [label="{name}\\n<{job.wcet}, {job.deadline}>"];'
        )
    for e in task.edges:
        lines.append(f'  "{e.src}" -> "{e.dst}" [label="{e.separation}"];')
    lines.append("}")
    return "\n".join(lines)


def save_task_dot(task: DRTTask, path: Union[str, Path]) -> None:
    """Write *task* to *path* in the round-trip DOT dialect.

    The file ends with a newline (Graphviz and POSIX tools expect one)
    and reads back with :func:`load_task_dot` as an identical task:
    same name, same jobs with exact rational parameters, same edges.

    Raises:
        SerializationError: when *path* cannot be written.
    """
    try:
        Path(path).write_text(task_to_dot(task) + "\n")
    except OSError as exc:
        raise SerializationError(
            f"cannot write task to {path}: {exc}"
        ) from exc


_HEADER_RE = re.compile(r'^\s*digraph\s+"(?P<name>[^"]*)"\s*\{\s*$')
_NODE_RE = re.compile(
    r'^\s*"(?P<name>[^"]+)"\s*\[label="(?P=name)\\n'
    r"<(?P<wcet>[^,>]+),\s*(?P<deadline>[^>]+)>\"\]\s*;\s*$"
)
_EDGE_RE = re.compile(
    r'^\s*"(?P<src>[^"]+)"\s*->\s*"(?P<dst>[^"]+)"\s*'
    r'\[label="(?P<sep>[^"]+)"\]\s*;\s*$'
)


def _q_in(text: str, what: str, line_no: int) -> Fraction:
    try:
        return Fraction(text.strip())
    except (ValueError, ZeroDivisionError) as exc:
        raise SerializationError(
            f"line {line_no}: invalid rational {text!r} for {what}"
        ) from exc


def task_from_dot(source: str, validate: bool = True) -> DRTTask:
    """Parse the DOT dialect emitted by :func:`task_to_dot`.

    Args:
        source: DOT text.
        validate: Run :func:`repro.drt.validate.validate_task` on the
            result (default).

    Raises:
        SerializationError: on lines the round-trip dialect does not
            cover, naming the line.
        ValidationError: when *validate* is set and the parsed task is
            semantically malformed.
    """
    name = None
    jobs = []
    edges = []
    edge_lines = []
    closed = False
    for line_no, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if name is None:
            m = _HEADER_RE.match(line)
            if m is None:
                raise SerializationError(
                    f'line {line_no}: expected \'digraph "<name>" {{\', '
                    f"got {stripped!r}"
                )
            name = m.group("name")
            continue
        if stripped == "}":
            closed = True
            continue
        if stripped.startswith("rankdir"):
            continue
        m = _EDGE_RE.match(line)
        if m is not None:
            edges.append(
                Edge(
                    m.group("src"),
                    m.group("dst"),
                    _q_in(
                        m.group("sep"),
                        f"edge {m.group('src')} -> {m.group('dst')}",
                        line_no,
                    ),
                )
            )
            edge_lines.append((m.group("src"), m.group("dst"), line_no))
            continue
        m = _NODE_RE.match(line)
        if m is not None:
            jobs.append(
                Job(
                    m.group("name"),
                    _q_in(m.group("wcet"), f"job {m.group('name')}", line_no),
                    _q_in(
                        m.group("deadline"),
                        f"job {m.group('name')}",
                        line_no,
                    ),
                )
            )
            continue
        raise SerializationError(
            f"line {line_no}: unrecognised DOT statement {stripped!r}"
        )
    if name is None or not closed:
        raise SerializationError("DOT source is not a closed digraph block")
    require_declared_endpoints(edge_lines, {j.name for j in jobs})
    task = DRTTask(name, jobs, edges)
    if validate:
        validate_task(task)
    return task


def load_task_dot(path: Union[str, Path], validate: bool = True) -> DRTTask:
    """Read a task from a DOT file (validated by default)."""
    try:
        source = Path(path).read_text()
    except OSError as exc:
        raise SerializationError(
            f"cannot read task from {path}: {exc}"
        ) from exc
    return task_from_dot(source, validate=validate)
