"""Serialisation: JSON task/curve exchange and Graphviz export."""

from repro.io.json_io import (
    task_to_dict,
    task_from_dict,
    curve_to_dict,
    curve_from_dict,
    save_task,
    load_task,
)
from repro.io.dot import (
    load_task_dot,
    save_task_dot,
    task_from_dot,
    task_to_dot,
)

__all__ = [
    "task_to_dict",
    "task_from_dict",
    "curve_to_dict",
    "curve_from_dict",
    "save_task",
    "load_task",
    "task_to_dot",
    "save_task_dot",
    "task_from_dot",
    "load_task_dot",
]
