"""Terminal visualisation of curves and analyses (no plotting deps).

ASCII rendering keeps the library dependency-free while making examples
and CLI output self-explanatory: curves become step/line charts, delay
analyses become annotated busy-window pictures.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro._numeric import Q, NumLike, as_q
from repro.minplus.curve import Curve

__all__ = ["render_curves", "render_delay_analysis"]


def render_curves(
    curves: Dict[str, Curve],
    horizon: NumLike,
    width: int = 72,
    height: int = 18,
) -> str:
    """ASCII chart of one or more curves on ``[0, horizon]``.

    Args:
        curves: ``{label: curve}``; each label's first character is used
            as the plot glyph.
        horizon: Right end of the time axis.
        width: Plot width in characters.
        height: Plot height in characters.
    """
    hz = as_q(horizon)
    if hz <= 0 or not curves:
        raise ValueError("need a positive horizon and at least one curve")
    samples: Dict[str, List[Fraction]] = {}
    times = [hz * i / (width - 1) for i in range(width)]
    top = Q(0)
    for label, curve in curves.items():
        vals = [curve.at(t) for t in times]
        samples[label] = vals
        top = max(top, max(vals))
    if top == 0:
        top = Q(1)
    grid = [[" "] * width for _ in range(height)]
    for label, vals in samples.items():
        glyph = label[0]
        for x, v in enumerate(vals):
            y = int((height - 1) * (1 - v / top)) if top else height - 1
            y = min(max(y, 0), height - 1)
            cell = grid[y][x]
            grid[y][x] = "*" if cell not in (" ", glyph) else glyph
    lines = []
    for i, row in enumerate(grid):
        value = top * (height - 1 - i) / (height - 1)
        axis = f"{float(value):8.2f} |"
        lines.append(axis + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"0{'':{width - 12}}{float(hz):.1f}"
    )
    legend = "  ".join(f"{label[0]} = {label}" for label in curves)
    lines.append(" " * 10 + legend + "   (* = overlap)")
    return "\n".join(lines)


def render_delay_analysis(
    rbf: Curve,
    beta: Curve,
    busy_window: NumLike,
    delay: NumLike,
    width: int = 72,
    height: int = 18,
) -> str:
    """Chart the request bound against the service with annotations."""
    hz = max(as_q(busy_window) * Q(5, 4), Q(1))
    chart = render_curves({"rbf": rbf, "beta": beta}, hz, width, height)
    return (
        chart
        + f"\n  busy window = {busy_window}, worst-case delay = {delay}"
    )
