"""Workload generators and case studies driving the evaluation."""

from repro.workloads.random_drt import RandomDrtConfig, random_drt_task, random_task_set
from repro.workloads.case_studies import (
    can_gateway,
    engine_control,
    video_decoder,
    flight_management,
    CASE_STUDIES,
)

__all__ = [
    "RandomDrtConfig",
    "random_drt_task",
    "random_task_set",
    "can_gateway",
    "engine_control",
    "video_decoder",
    "flight_management",
    "CASE_STUDIES",
]
