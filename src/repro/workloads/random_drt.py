"""Random DRT task generation with controlled structure.

The generator follows the recipe of the DRT evaluation literature
(documented parameters since the paper's own generator is unavailable —
see DESIGN.md):

1. lay a random backbone cycle through all vertices (strong connectivity,
   so the task recurs and has a well-defined utilization);
2. add extra random edges until the target mean out-degree (*branching*)
   is reached — branching is what creates mutually exclusive paths, the
   feature that separates structural analysis from curve abstractions;
3. draw WCETs and separations uniformly from the configured ranges;
4. optionally rescale all WCETs so the maximum cycle ratio hits a target
   utilization exactly (utilization is linear in the WCETs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro._numeric import Q, NumLike, as_q
from repro.drt.model import DRTTask, Edge, Job
from repro.drt.transform import scale_wcets
from repro.drt.utilization import max_cycle_ratio
from repro.errors import ModelError

__all__ = ["RandomDrtConfig", "random_drt_task", "random_task_set"]


@dataclass(frozen=True)
class RandomDrtConfig:
    """Parameters of the random task generator.

    Attributes:
        vertices: Number of job types.
        branching: Target mean out-degree (>= 1); 1 gives a pure cycle.
        wcet_range: Inclusive integer range for WCETs.
        separation_range: Inclusive integer range for edge separations.
        deadline_factor: Relative deadline = factor * min outgoing
            separation (<= 1 keeps deadlines constrained).
        target_utilization: If set, WCETs are rescaled so the maximum
            cycle ratio equals this exactly.
    """

    vertices: int = 10
    branching: float = 2.0
    wcet_range: Tuple[int, int] = (1, 10)
    separation_range: Tuple[int, int] = (10, 100)
    deadline_factor: Fraction = Q(1)
    target_utilization: Optional[Fraction] = None


def random_drt_task(
    rng: random.Random, config: RandomDrtConfig, name: str = "random"
) -> DRTTask:
    """Generate one random DRT task according to *config*.

    Args:
        rng: Seeded random source (determinism is on the caller).
        config: Generator parameters.
        name: Task name.

    Raises:
        ModelError: on inconsistent configuration (too few vertices,
            branching below 1, empty ranges).
    """
    n = config.vertices
    if n < 1:
        raise ModelError("need at least one vertex")
    if config.branching < 1:
        raise ModelError("branching must be >= 1")
    lo_w, hi_w = config.wcet_range
    lo_s, hi_s = config.separation_range
    if lo_w < 1 or hi_w < lo_w or lo_s < 1 or hi_s < lo_s:
        raise ModelError("invalid wcet/separation ranges")
    names = [f"v{i}" for i in range(n)]
    order = list(names)
    rng.shuffle(order)
    edges: List[Tuple[str, str]] = []
    present = set()
    # Backbone cycle (strong connectivity).
    if n == 1:
        edges.append((names[0], names[0]))
        present.add((names[0], names[0]))
    else:
        for a, b in zip(order, order[1:] + order[:1]):
            edges.append((a, b))
            present.add((a, b))
    # Extra edges up to the branching target.
    target_edges = max(len(edges), round(config.branching * n))
    attempts = 0
    while len(edges) < target_edges and attempts < 50 * n:
        a, b = rng.choice(names), rng.choice(names)
        if (a, b) not in present and (n > 1 or a == b):
            present.add((a, b))
            edges.append((a, b))
        attempts += 1
    wcets = {v: Q(rng.randint(lo_w, hi_w)) for v in names}
    seps = {e: Q(rng.randint(lo_s, hi_s)) for e in edges}
    jobs = []
    for v in names:
        out = [seps[e] for e in edges if e[0] == v]
        base = min(out) if out else Q(hi_s)
        jobs.append(Job(v, wcets[v], max(Q(1), as_q(config.deadline_factor) * base)))
    task = DRTTask(
        name, jobs, [Edge(a, b, seps[(a, b)]) for a, b in edges]
    )
    if config.target_utilization is not None:
        u = max_cycle_ratio(task)
        if u <= 0:
            raise ModelError("generated task has no cycle; cannot rescale")
        task = scale_wcets(task, as_q(config.target_utilization) / u)
    return task


def random_task_set(
    rng: random.Random,
    n_tasks: int,
    total_utilization: NumLike,
    config: RandomDrtConfig,
) -> List[DRTTask]:
    """A set of random tasks whose utilizations sum to *total_utilization*.

    Individual utilizations are drawn by the standard UUniFast split and
    each task is rescaled to its share exactly.
    """
    total = as_q(total_utilization)
    if n_tasks < 1 or total <= 0:
        raise ModelError("need n_tasks >= 1 and positive utilization")
    shares = _uunifast(rng, n_tasks, total)
    tasks = []
    for i, share in enumerate(shares):
        cfg = RandomDrtConfig(
            vertices=config.vertices,
            branching=config.branching,
            wcet_range=config.wcet_range,
            separation_range=config.separation_range,
            deadline_factor=config.deadline_factor,
            target_utilization=share,
        )
        tasks.append(random_drt_task(rng, cfg, name=f"task{i}"))
    return tasks


def _uunifast(rng: random.Random, n: int, total: Q) -> List[Q]:
    """UUniFast utilization split, rationalised to denominator 10^6."""
    shares: List[Q] = []
    remaining = total
    for i in range(n - 1):
        frac = rng.random() ** (1.0 / (n - 1 - i))
        next_remaining = remaining * Q(round(frac * 10**6), 10**6)
        share = remaining - next_remaining
        shares.append(max(share, remaining / (10 * n)))
        remaining = next_remaining
    shares.append(remaining)
    return shares
