"""Case studies: the motivating workload domains of structural models.

Each case study is a hand-built DRT task whose behaviour is *structural*
in the way that breaks curve abstractions: heavy jobs occur only on
particular paths, guarded by the graph, so an arrival curve that merges
paths charges every window with work that no single behaviour can
release.  The three domains are the standard motivating examples of the
graph-based task model literature:

* CAN gateway — message bursts guarded by a protocol state machine;
* engine control — rotation-triggered jobs whose rate and weight trade
  off across RPM modes;
* video decoder — MPEG group-of-pictures frame structure.

The concrete numbers are synthetic (documented substitution — the paper's
industrial traces are unavailable) but chosen to exercise realistic
ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional

from repro._numeric import Q
from repro.drt.model import DRTTask
from repro.minplus.builders import rate_latency
from repro.minplus.curve import Curve

__all__ = [
    "CaseStudy",
    "can_gateway",
    "engine_control",
    "video_decoder",
    "flight_management",
    "CASE_STUDIES",
]


@dataclass(frozen=True)
class CaseStudy:
    """A named workload/service scenario.

    Attributes:
        name: Scenario identifier.
        task: The structural workload.
        service: Lower service curve of the processing resource.
        description: One-paragraph story of the scenario.
        adversary: Factory for a concrete service process complying with
            *service* and realising (or approaching) its worst case; used
            by the validation experiments.  ``None`` means "rate-latency
            adversary derived from the curve's tail".
    """

    name: str
    task: DRTTask
    service: Curve
    description: str
    adversary: Optional[Callable[[], object]] = None

    def make_adversary(self):
        """A fresh worst-case-compliant service process for simulation."""
        return self.adversary_models()[0]

    def adversary_models(self) -> List[object]:
        """Candidate worst-case-compliant service processes.

        For phase-dependent services (TDMA) the worst phase depends on
        the behaviour being replayed, so several candidates are returned
        and validation experiments take the worst observation.
        """
        if self.adversary is not None:
            models = self.adversary()
            return list(models) if isinstance(models, (list, tuple)) else [models]
        from repro.sim.service import RateLatencyServer

        return [
            RateLatencyServer(
                self.service.tail_rate, self.service.segments[-1].start
            )
        ]


def can_gateway() -> CaseStudy:
    """A CAN gateway forwarding a stateful message protocol.

    Normal operation forwards small telemetry frames (0.5 ms each, at
    least 5 ms apart).  A diagnostic request — at most once per 100 ms —
    triggers a burst of three large response frames 2 ms apart before the
    gateway returns to telemetry.  The gateway CPU is shared: this flow
    sees a rate-latency service of half a processor with 4 ms
    arbitration latency.

    The heavy diagnostic burst and the telemetry stream are mutually
    exclusive in time, which is exactly what the arrival-curve
    abstraction loses.
    """
    task = DRTTask.build(
        "can-gateway",
        jobs={
            "tel": (Q(1, 2), 5),     # telemetry forward
            "diag_req": (1, 4),      # diagnostic request parsing
            "diag1": (3, 6),         # large response frames
            "diag2": (3, 6),
            "diag3": (3, 6),
        },
        edges=[
            ("tel", "tel", 5),
            ("tel", "diag_req", 100),
            ("diag_req", "diag1", 2),
            ("diag1", "diag2", 2),
            ("diag2", "diag3", 2),
            ("diag3", "tel", 10),
        ],
    )
    return CaseStudy(
        name="can-gateway",
        task=task,
        service=rate_latency(Q(1, 2), 4),
        description=can_gateway.__doc__ or "",
    )


def engine_control() -> CaseStudy:
    """Engine-position-triggered injection control.

    At low RPM the controller runs the *full* injection routine (heavy,
    5 ms) once per 40 ms revolution; at high RPM it switches to the
    *reduced* routine (1 ms) every 10 ms.  Mode changes pass through a
    recalibration job.  The ECU grants this task a 60 % processor share
    with 2 ms scheduling latency.

    A sporadic abstraction must assume the heavy job at the high rate —
    overload — while the structure proves the heavy job only ever runs
    at the slow rate.
    """
    task = DRTTask.build(
        "engine-control",
        jobs={
            "full": (5, 40),        # full routine at low RPM
            "reduced": (1, 10),     # reduced routine at high RPM
            "up": (2, 20),          # recalibrate on RPM increase
            "down": (2, 20),        # recalibrate on RPM decrease
        },
        edges=[
            ("full", "full", 40),
            ("full", "up", 40),
            ("up", "reduced", 20),
            ("reduced", "reduced", 10),
            ("reduced", "down", 10),
            ("down", "full", 40),
        ],
    )
    return CaseStudy(
        name="engine-control",
        task=task,
        service=rate_latency(Q(3, 5), 2),
        description=engine_control.__doc__ or "",
    )


def video_decoder() -> CaseStudy:
    """Soft real-time MPEG decoding of a 12-frame group of pictures.

    The GOP cycles I-P-B-B-P-B-B (abbreviated to keep the graph small):
    I-frames decode in 8 ms, P-frames in 4 ms, B-frames in 2 ms; frames
    arrive every 10 ms (100 fps stream feeding a 33 ms deadline display
    queue).  A scene cut may restart the GOP early after any P-frame.
    The decoder runs on 70 % of a core with 3 ms latency.
    """
    task = DRTTask.build(
        "video-decoder",
        jobs={
            "I": (8, 30),
            "P1": (4, 30),
            "B1": (2, 30),
            "B2": (2, 30),
            "P2": (4, 30),
            "B3": (2, 30),
            "B4": (2, 30),
        },
        edges=[
            ("I", "P1", 10),
            ("P1", "B1", 10),
            ("B1", "B2", 10),
            ("B2", "P2", 10),
            ("P2", "B3", 10),
            ("B3", "B4", 10),
            ("B4", "I", 10),
            # Scene cuts: early GOP restart after a P frame.
            ("P1", "I", 20),
            ("P2", "I", 20),
        ],
    )
    return CaseStudy(
        name="video-decoder",
        task=task,
        service=rate_latency(Q(7, 10), 3),
        description=video_decoder.__doc__ or "",
    )


def flight_management() -> CaseStudy:
    """Avionics flight-management partition under ARINC-653 scheduling.

    The partition owns a 5 ms window in every 20 ms major frame (a TDMA
    service — non-convex, which is where curve abstractions measurably
    lose).  Its workload is structural: a navigation update loop (1 ms,
    every 25 ms) occasionally enters a waypoint-recalculation sequence —
    plan (5 ms), two optimisation passes (3 ms each, 25 ms apart) —
    triggered at most once per 200 ms, plus a display refresh after each
    recalculation.  On the slotted window the *concave-hull* abstraction
    (what a curve tool computes) loses 1.75x against the structure; the
    sporadic model happens to coincide here — an honest demonstration
    that the sporadic and hull bounds are incomparable in general (the
    sporadic staircase is not concave and can undercut the hull on
    plateaued service inverses).
    """
    task = DRTTask.build(
        "flight-management",
        jobs={
            "nav": (1, 25),          # navigation update
            "plan": (5, 25),         # waypoint recalculation entry
            "opt1": (3, 25),         # optimisation passes
            "opt2": (3, 25),
            "disp": (2, 25),         # display refresh
        },
        edges=[
            ("nav", "nav", 25),
            ("nav", "plan", 200),
            ("plan", "opt1", 25),
            ("opt1", "opt2", 25),
            ("opt2", "disp", 25),
            ("disp", "nav", 25),
        ],
    )

    def _adversary():
        from repro.sim.service import TdmaServer

        # The worst slot phase depends on the replayed behaviour: offer
        # every integral phase of the 20 ms major frame.
        return [TdmaServer(1, 5, 20, offset=k) for k in range(20)]

    from repro.curves.service import tdma_service

    return CaseStudy(
        name="flight-management",
        task=task,
        service=tdma_service(1, 5, 20, horizon=800),
        description=flight_management.__doc__ or "",
        adversary=_adversary,
    )


#: All case studies by name (the E1 benchmark iterates this).
CASE_STUDIES: Dict[str, Callable[[], CaseStudy]] = {
    "can-gateway": can_gateway,
    "engine-control": engine_control,
    "video-decoder": video_decoder,
    "flight-management": flight_management,
}
