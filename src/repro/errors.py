"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch
everything raised by this package with a single ``except`` clause while
still being able to distinguish model problems from analysis problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CurveError",
    "EmptyCurveError",
    "CurveDomainError",
    "ModelError",
    "ValidationError",
    "AnalysisError",
    "UnboundedBusyWindowError",
    "HorizonExceededError",
    "BudgetExhaustedError",
    "SimulationError",
    "SerializationError",
    "WorkerError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class CurveError(ReproError):
    """Problem with a piecewise-linear curve or a curve operation."""


class EmptyCurveError(CurveError):
    """A curve was constructed without any segment."""


class CurveDomainError(CurveError):
    """A curve was evaluated or operated on outside its domain."""


class ModelError(ReproError):
    """Problem with a workload or resource model."""


class ValidationError(ModelError):
    """A task/model failed a well-formedness check."""


class AnalysisError(ReproError):
    """An analysis could not produce a result."""


class UnboundedBusyWindowError(AnalysisError):
    """The busy-window fixpoint does not exist (workload overloads service).

    Raised when the long-run request rate of the workload is not smaller
    than the long-run service rate, so ``rbf(t) <= beta(t)`` never holds
    for ``t > 0`` and the worst-case delay is unbounded.
    """


class HorizonExceededError(AnalysisError):
    """An exploration exceeded the configured safety horizon."""


class BudgetExhaustedError(AnalysisError):
    """A cooperative analysis budget ran out mid-analysis.

    Raised by :func:`repro.resilience.checkpoint` when the active
    :class:`repro.resilience.Budget` has no deadline or expansion
    allowance left.  Entry points that accept a budget catch it and
    degrade to a sound over-approximate bound
    (:func:`repro.resilience.bounded_delay`); it escapes to callers only
    when an analysis is run under :func:`repro.resilience.budget_scope`
    directly.

    Attributes:
        reason: Which limit fired (``"deadline"`` or ``"max_expansions"``).
    """

    def __init__(self, message: str, reason: str = "deadline") -> None:
        super().__init__(message)
        self.reason = reason


class WorkerError(ReproError):
    """A parallel worker failed permanently (crash/hang after retries).

    Raised by :func:`repro.parallel.plane.parallel_map` when an item
    could not be completed by the worker pool *and* its serial in-parent
    re-execution failed for infrastructure reasons.  Analysis errors
    raised by the item body itself propagate unchanged instead.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was configured inconsistently."""


class SerializationError(ReproError):
    """A model could not be read from or written to an external format."""
