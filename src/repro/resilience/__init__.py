"""Resilience layer: budgets, anytime-sound degradation, fault injection.

Three cooperating pieces turn the analysis engine into something that
can be trusted inside a larger system:

* :mod:`repro.resilience.budget` — cooperative effort budgets
  (:class:`Budget`, :func:`budget_scope`, :func:`checkpoint`) threaded
  through the frontier exploration, busy-window iteration and min-plus
  kernels;
* :mod:`repro.resilience.bounded` — :func:`bounded_delay`, which turns
  budget exhaustion into a sound over-approximate bound via a
  degradation ladder instead of a failure;
* :mod:`repro.resilience.chaos` — deterministic, seeded fault injection
  (``REPRO_CHAOS``) exercising worker crashes, hangs and cache
  corruption in tests and CI.
"""

from repro.errors import BudgetExhaustedError, WorkerError
from repro.resilience.bounded import (
    BoundedDelayResult,
    bounded_delay,
    bounded_delay_many,
)
from repro.resilience.budget import (
    Budget,
    BudgetMeter,
    active_meter,
    budget_scope,
    checkpoint,
)
from repro.resilience import chaos

__all__ = [
    "Budget",
    "BudgetMeter",
    "BudgetExhaustedError",
    "BoundedDelayResult",
    "WorkerError",
    "active_meter",
    "bounded_delay",
    "bounded_delay_many",
    "budget_scope",
    "chaos",
    "checkpoint",
]
