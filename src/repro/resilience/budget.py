"""Cooperative analysis budgets: bounded effort with a sound way out.

The frontier exploration at the heart of the structural analyses is
input-dependent and can blow up (high utilization stretches the busy
window; dense graphs multiply tuples).  A :class:`Budget` puts a hard
lid on that effort — a wall-clock *deadline*, a *max_expansions* cap on
cooperative work units, and a *max_segments* parameter for the degraded
approximation — without ever compromising soundness: code on the hot
paths calls :func:`checkpoint` at natural work boundaries, and when the
active budget is exhausted a typed
:class:`~repro.errors.BudgetExhaustedError` unwinds the analysis.
:func:`repro.resilience.bounded.bounded_delay` catches it and walks a
degradation ladder to a sound over-approximate bound.

Design constraints:

* **Near-zero disabled cost.**  With no active budget, :func:`checkpoint`
  is one global read and one ``is None`` test.  The benchmark gate
  (``benchmarks/bench_resilience.py``) asserts the disabled overhead of
  all checkpoints in an analysis sweep stays below 2% of its runtime.
* **Cheap enabled cost.**  The deadline is checked against
  ``time.monotonic()`` only every :data:`CLOCK_STRIDE` charged units, so
  enabling a budget does not add a syscall per frontier pop.
* **Resumable exhaustion.**  The exploration state of
  :class:`repro.drt.request.FrontierExplorer` survives a mid-loop unwind
  (its heap and per-vertex frontiers are instance state), so a later
  attempt — e.g. the hybrid-kernel rung of the degradation ladder —
  resumes where the budget ran out instead of restarting.

Budgets are *specifications*; the consumable state lives in a
:class:`BudgetMeter` created per analysis attempt (one :class:`Budget`
can be reused across many calls).  Meters install via
:func:`budget_scope` and nest: the innermost meter is charged, and
charges propagate outward so an enclosing budget also counts work done
under an inner one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import BudgetExhaustedError

__all__ = [
    "Budget",
    "BudgetMeter",
    "budget_scope",
    "active_meter",
    "checkpoint",
    "CLOCK_STRIDE",
]

#: Charged units between wall-clock reads (deadline check granularity).
CLOCK_STRIDE = 64


@dataclass(frozen=True)
class Budget:
    """Bounded-effort specification for one analysis.

    Attributes:
        deadline: Wall-clock allowance in seconds (None = unlimited).
        max_expansions: Cap on cooperative work units — frontier tuple
            expansions plus amortised kernel/pseudo-inverse charges
            (None = unlimited).
        max_segments: Segment budget of the degraded request-bound
            approximation (the ``k`` of
            :func:`repro.minplus.approximation.upper_approximation`);
            ``None`` uses :data:`DEFAULT_MAX_SEGMENTS`.
    """

    deadline: Optional[float] = None
    max_expansions: Optional[int] = None
    max_segments: Optional[int] = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("budget deadline must be positive")
        if self.max_expansions is not None and self.max_expansions < 0:
            raise ValueError("budget max_expansions must be >= 0")
        if self.max_segments is not None and self.max_segments < 2:
            raise ValueError("budget max_segments must be >= 2")

    def start(self) -> "BudgetMeter":
        """A fresh consumable meter for this specification."""
        return BudgetMeter(self)

    @classmethod
    def from_request(
        cls,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        max_segments: Optional[int] = None,
    ) -> Optional["Budget"]:
        """A budget from wire-level request fields, or None.

        The analysis service expresses deadlines in milliseconds (the
        natural unit of a latency SLO); this is the one conversion point
        onto the engine's seconds-based :class:`Budget`.  Returns None
        when every field is absent, so callers can pass the result
        straight to ``budget=`` parameters.

        Raises:
            ValueError: on non-positive deadlines or negative caps, with
                the same messages as the :class:`Budget` constructor.
        """
        if deadline_ms is None and max_expansions is None and max_segments is None:
            return None
        return cls(
            deadline=None if deadline_ms is None else float(deadline_ms) / 1000.0,
            max_expansions=max_expansions,
            max_segments=max_segments,
        )

    def tightened(
        self,
        deadline: Optional[float] = None,
        max_expansions: Optional[int] = None,
    ) -> "Budget":
        """A budget at least as strict as this one.

        Each given field is min-combined with the existing value (an
        unlimited field adopts the new cap outright).  The service's
        load shedder uses this to force overload requests onto the fast
        degraded rungs without ever *loosening* what the client asked
        for.
        """

        def _combine(mine, new):
            if new is None:
                return mine
            return new if mine is None else min(mine, new)

        return Budget(
            deadline=_combine(self.deadline, deadline),
            max_expansions=_combine(self.max_expansions, max_expansions),
            max_segments=self.max_segments,
        )


#: Default segment budget of the degraded approximation ladder rung.
DEFAULT_MAX_SEGMENTS = 32


class BudgetMeter:
    """Consumable runtime state of one :class:`Budget`.

    The meter survives across ladder rungs of one bounded analysis: a
    rung that exhausts the expansion allowance leaves ``remaining()``
    honest for the next rung's slack test.
    """

    __slots__ = ("budget", "_deadline_at", "_remaining", "_until_clock")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self._deadline_at = (
            None
            if budget.deadline is None
            else time.monotonic() + budget.deadline
        )
        self._remaining = budget.max_expansions
        self._until_clock = CLOCK_STRIDE

    # -- accounting ------------------------------------------------------

    def charge(self, n: int = 1) -> None:
        """Consume *n* work units; raise when the budget is exhausted.

        Raises:
            BudgetExhaustedError: when the expansion allowance drops
                below zero or the wall-clock deadline has passed.
        """
        if self._remaining is not None:
            self._remaining -= n
            if self._remaining < 0:
                self._remaining = 0
                raise BudgetExhaustedError(
                    f"analysis budget exhausted: more than "
                    f"{self.budget.max_expansions} work units expanded",
                    reason="max_expansions",
                )
        if self._deadline_at is not None:
            self._until_clock -= n
            if self._until_clock <= 0:
                self._until_clock = CLOCK_STRIDE
                self._check_deadline()

    def _check_deadline(self) -> None:
        if (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        ):
            raise BudgetExhaustedError(
                f"analysis budget exhausted: deadline of "
                f"{self.budget.deadline}s passed",
                reason="deadline",
            )

    # -- slack queries (for the degradation ladder) ----------------------

    def remaining_expansions(self) -> Optional[int]:
        """Unused expansion allowance (None = unlimited)."""
        return self._remaining

    def remaining_seconds(self) -> Optional[float]:
        """Unused wall-clock allowance in seconds (None = unlimited)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.monotonic()

    def has_slack(self) -> bool:
        """True iff another cooperative attempt could make progress."""
        if self._remaining is not None and self._remaining <= 0:
            return False
        secs = self.remaining_seconds()
        return secs is None or secs > 0

    def max_segments(self) -> int:
        """The degraded approximation's segment budget."""
        k = self.budget.max_segments
        return DEFAULT_MAX_SEGMENTS if k is None else k


# ----------------------------------------------------------------------
# The active-meter stack and the hot-path checkpoint
# ----------------------------------------------------------------------

#: Innermost active meter (hot-path fast path: one read, one None test).
_active: Optional[BudgetMeter] = None
#: Enclosing meters, outermost first (charges propagate to all of them).
_stack: List[BudgetMeter] = []


def active_meter() -> Optional[BudgetMeter]:
    """The innermost active meter, or None when budgets are disabled."""
    return _active


@contextmanager
def budget_scope(budget) -> Iterator[Optional[BudgetMeter]]:
    """Install *budget* for the enclosed block.

    Accepts a :class:`Budget` (a fresh meter is started), an existing
    :class:`BudgetMeter` (resumed — the degradation ladder's rungs share
    one meter), or ``None`` (no-op scope).  Scopes nest; work done under
    an inner scope also charges the enclosing meters.
    """
    global _active
    if budget is None:
        yield None
        return
    meter = budget.start() if isinstance(budget, Budget) else budget
    _stack.append(meter)
    prev = _active
    _active = meter
    try:
        yield meter
    finally:
        _stack.pop()
        _active = prev


def checkpoint(n: int = 1) -> None:
    """Cooperative budget checkpoint (hot-path safe).

    Called from the engine's work loops — frontier expansions,
    busy-window rounds, batched kernel sweeps — with *n* proportional to
    the work since the last call.  No-op unless a budget scope is
    active.

    Raises:
        BudgetExhaustedError: when the active budget is exhausted.
    """
    meter = _active
    if meter is None:
        return
    if len(_stack) == 1:
        meter.charge(n)
        return
    for m in _stack:
        m.charge(n)
