"""Anytime-sound bounded analysis: the degradation ladder.

:func:`bounded_delay` is the budgeted counterpart of
:func:`repro.core.delay.structural_delay`.  Given a
:class:`~repro.resilience.budget.Budget` it walks a ladder of analyses,
each cheaper and no less pessimistic than the one above, and returns the
bound of the highest rung the budget allowed to finish:

1. **exact frontier** — the full structural analysis under the ambient
   kernel backend, metered by cooperative checkpoints;
2. **hybrid kernels** — the same analysis on the vectorized hybrid
   backend (bit-identical results, several times faster), attempted when
   the exact rung ran out of wall clock and the budget has slack left;
   exploration *resumes* from the shared frontier explorer instead of
   restarting;
3. **k-segment curve approximation** — the request-bound staircase
   explored so far, continued by its sound affine tail and compressed to
   the budget's ``max_segments`` with
   :func:`repro.minplus.approximation.upper_approximation`; the bound is
   the horizontal deviation against the service curve.  Pointwise the
   compressed curve dominates the exact request bound, so the bound
   dominates the exact delay;
4. **utilization/rate bound** — the exact linear request bound
   ``B + rho * t`` of :func:`repro.drt.utilization.linear_request_bound`
   against the service curve: closed-form, always bounded effort.

Rungs 3 and 4 run *outside* the budget: their cost is bounded by
construction (a handful of segments), so they terminate even when the
budget is fully spent — the analysis always returns in bounded time with
a sound bound or a typed error.  Soundness of the ladder
(``bound >= exact delay``) is property-tested on random DRT sets in
``tests/test_budget.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence

from repro._numeric import Q, is_inf
from repro.errors import BudgetExhaustedError, UnboundedBusyWindowError
from repro.resilience.budget import Budget, BudgetMeter, budget_scope

__all__ = ["BoundedDelayResult", "bounded_delay", "bounded_delay_many"]

#: Ladder rung names, highest fidelity first.
LEVELS = ("exact", "kernel", "k-segment", "rate")


@dataclass(frozen=True)
class BoundedDelayResult:
    """Outcome of a budgeted structural delay analysis.

    Attributes:
        delay: The delay bound.  Exact when ``degraded`` is False, a
            sound over-approximation (``>=`` the exact bound) otherwise.
        degraded: True iff the budget forced an approximate rung.
        level: The ladder rung that produced the bound (``"exact"``,
            ``"kernel"``, ``"k-segment"`` or ``"rate"``).
        reason: Why lower-fidelity rungs were reached (None when the
            first rung finished) — e.g. ``"exact: deadline"``.
        busy_window: Busy-window bound (exact rungs only).
        critical_tuple: Witness request tuple (exact rungs only).
        tuple_count: Frontier tuples examined (exact rungs only).
        explored_horizon: Horizon up to which the request bound was
            exactly explored when a degraded rung answered (None for
            exact rungs and the pure rate bound).
    """

    delay: Fraction
    degraded: bool
    level: str
    reason: Optional[str]
    busy_window: Optional[Fraction] = None
    critical_tuple: Optional[object] = None
    tuple_count: Optional[int] = None
    explored_horizon: Optional[Fraction] = None


def _exact_result(res, level: str, reason: Optional[str]) -> BoundedDelayResult:
    return BoundedDelayResult(
        delay=res.delay,
        degraded=False,
        level=level,
        reason=reason,
        busy_window=res.busy_window,
        critical_tuple=res.critical_tuple,
        tuple_count=res.tuple_count,
    )


def _hdev_bound(curve, beta) -> Fraction:
    """Horizontal deviation as a delay bound, typed error if unbounded."""
    from repro.minplus.deviation import horizontal_deviation

    bound = horizontal_deviation(curve, beta)
    if is_inf(bound):
        raise UnboundedBusyWindowError(
            f"degraded request bound (rate {curve.tail_rate}) saturates "
            f"the service rate {beta.tail_rate}"
        )
    return max(bound, Q(0))


def bounded_delay(
    task,
    beta,
    budget: Optional[Budget] = None,
    backend: Optional[str] = None,
) -> BoundedDelayResult:
    """Worst-case delay of *task* on *beta* within a cooperative budget.

    Args:
        task: The structural workload.
        beta: Lower service curve of the resource.
        budget: Effort specification; ``None`` runs the plain exact
            analysis (zero additional cost beyond disabled checkpoints).
        backend: Kernel backend override for the first rung (see
            :mod:`repro.minplus.backend`).

    Returns:
        A :class:`BoundedDelayResult`; ``degraded=True`` results carry a
        bound provably at or above the exact one.

    Raises:
        UnboundedBusyWindowError: when even the degraded request bound
            saturates the service (a model property, not a budget one).
        BudgetExhaustedError: never — exhaustion degrades instead.
    """
    from repro.core.delay import structural_delay
    from repro.minplus import backend as backend_mod
    from repro.minplus import kernels

    scope = (
        backend_mod.use_backend(backend)
        if backend
        else _null_context()
    )
    with scope:
        if budget is None:
            return _exact_result(
                structural_delay(task, beta), "exact", None
            )
        meter = budget.start()
        reasons: List[str] = []
        try:
            with budget_scope(meter):
                res = structural_delay(task, beta)
            return _exact_result(res, "exact", None)
        except BudgetExhaustedError as exc:
            reasons.append(f"exact: {exc.reason}")
        if (
            backend_mod.get_backend() == "exact"
            and kernels.AVAILABLE
            and meter.has_slack()
        ):
            # The shared frontier explorer kept its heap, so this rung
            # resumes the exploration where the previous one stopped.
            try:
                with backend_mod.use_backend("hybrid"), budget_scope(meter):
                    res = structural_delay(task, beta)
                return _exact_result(res, "kernel", "; ".join(reasons))
            except BudgetExhaustedError as exc:
                reasons.append(f"kernel: {exc.reason}")
        return _degraded_bound(task, beta, meter, reasons)


def _degraded_bound(
    task, beta, meter: BudgetMeter, reasons: List[str]
) -> BoundedDelayResult:
    """Rungs 3 and 4: bounded-by-construction, run outside the budget."""
    from repro.drt.request import frontier_explorer
    from repro.drt.utilization import linear_request_bound
    from repro.minplus.approximation import upper_approximation
    from repro.minplus.curve import Curve
    from repro.minplus.segment import Segment

    reason = "; ".join(reasons)
    ex = frontier_explorer(task)
    hz = ex.explored_horizon
    if hz is not None and hz > 0:
        # Exact staircase on [0, hz) + sound affine tail beyond: a
        # pointwise upper bound on the true request bound everywhere.
        rbf = ex.rbf_curve(hz)
        k = meter.max_segments()
        if len(rbf.segments) > k:
            rbf = upper_approximation(rbf, k)
        return BoundedDelayResult(
            delay=_hdev_bound(rbf, beta),
            degraded=True,
            level="k-segment",
            reason=reason,
            explored_horizon=hz,
        )
    burst, rho = linear_request_bound(task)
    affine = Curve([Segment(Q(0), burst, rho)])
    return BoundedDelayResult(
        delay=_hdev_bound(affine, beta),
        degraded=True,
        level="rate",
        reason=reason,
    )


def _null_context():
    from contextlib import nullcontext

    return nullcontext()


def _bounded_case(item) -> BoundedDelayResult:
    """One task's bounded analysis (module-level: ships to workers)."""
    task, beta, budget, backend = item
    return bounded_delay(task, beta, budget=budget, backend=backend)


def bounded_delay_many(
    tasks: Sequence,
    beta,
    budget: Optional[Budget] = None,
    backend: Optional[str] = None,
    jobs=None,
    timeout: Optional[float] = None,
) -> List[BoundedDelayResult]:
    """:func:`bounded_delay` for many tasks, with watchdog fan-out.

    Each worker meters its own copy of *budget* (budgets are per-item
    specifications).  Combined with ``timeout=``, this is the plane's
    fully-armoured path: hung or crashed workers are retried and finally
    re-executed serially under the item budget's degraded mode — see
    :func:`repro.parallel.plane.parallel_map`.
    """
    from repro.parallel.plane import parallel_map

    items = [(task, beta, budget, backend) for task in tasks]
    return parallel_map(
        _bounded_case, items, jobs=jobs, timeout=timeout, budget=budget
    )
