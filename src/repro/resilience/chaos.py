"""Deterministic fault injection for the parallel engine and the cache.

Production resilience claims are only as good as their tests.  This
module plants *named fault sites* at the failure surfaces of the
parallel plane and the persistent result cache; a seeded configuration
decides, deterministically, which calls at which sites actually fail.
The chaos test-suite (``tests/test_chaos.py``) and the CI chaos job run
the real analyses under injection and assert every injected fault yields
a bit-identical result, a sound degraded bound, or a typed
:class:`~repro.errors.ReproError` — never a hang or a raw traceback.

**Sites** (see :data:`KNOWN_SITES`):

=====================  ====================================================
``worker.crash``       the worker process dies (``os._exit``) mid-job
``worker.hang``        the worker sleeps past any per-item timeout
``worker.pickle``      the job result cannot be pickled back to the parent
``cache.truncate``     a cache write persists only a prefix of the blob
``cache.corrupt``      a cache write flips a byte of the blob
``cache.enospc``       a cache write fails with ``ENOSPC`` (disk full)
``cache.eperm.read``   a cache read fails with ``EPERM``
``cache.eperm.write``  a cache write fails with ``EPERM``
``costmodel.corrupt``  a calibration-table read sees a truncated blob
``cluster.worker_crash``  the cluster coordinator's proxy connection to
                       the owning worker fails as if the worker died
                       mid-request (exercises ring ejection + bounded
                       retry-on-next-owner)
``cluster.partition``  the coordinator cannot reach the owning worker at
                       all (connect fails instantly) — a network
                       partition rather than a crashed process
``cluster.slow_worker``  the proxy hop to a worker stalls for
                       ``HANG_SECONDS`` before proceeding (gray failure:
                       the worker is alive but pathologically slow)
``cluster.migration_torn_write``  a migrated cache blob arrives
                       truncated, so the pull's digest verification
                       must catch it (exercises verify-and-retry)
``cluster.coordinator_crash``  the coordinator drops the client
                       connection mid-request without a response
                       (exercises client failover to a standby
                       coordinator via idempotent re-issue)
=====================  ====================================================

**Determinism.**  Every decision is a pure function of the seed, the
site name, and a *key*.  Call sites that have a natural identity (item
index + attempt number in the plane) pass it explicitly, so a retried
item draws a *different* decision than its first attempt — injected
crashes are transient, as real ones are.  Sites without a natural key
use a per-process, per-site call counter (deterministic for
single-process tests).

**Configuration.**  Off unless the ``REPRO_CHAOS`` environment variable
is set (or :func:`configure` / the :func:`scoped` test helper is used).
Spec grammar::

    REPRO_CHAOS="<seed>"                          # all sites, default p
    REPRO_CHAOS="seed=7,p=0.3"                    # all sites, p=0.3
    REPRO_CHAOS="seed=7,p=0.5,sites=worker.crash|cache.truncate"

Workers inherit the parent's chaos configuration through the plane's
per-job payload, exactly like the backend and cache configuration.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "KNOWN_SITES",
    "configure",
    "current_config",
    "apply_config",
    "is_active",
    "should_fire",
    "scoped",
    "HANG_SECONDS",
]

KNOWN_SITES = frozenset(
    {
        "worker.crash",
        "worker.hang",
        "worker.pickle",
        "cache.truncate",
        "cache.corrupt",
        "cache.enospc",
        "cache.eperm.read",
        "cache.eperm.write",
        "costmodel.corrupt",
        "cluster.worker_crash",
        "cluster.partition",
        "cluster.slow_worker",
        "cluster.migration_torn_write",
        "cluster.coordinator_crash",
    }
)

#: How long an injected hang sleeps.  Far beyond any per-item watchdog
#: by default, short enough that a leaked process exits on its own.
#: ``REPRO_CHAOS_HANG_S`` overrides it — full-suite chaos sweeps (the
#: CI chaos job) use a short hang so the sleeps stay a bounded tax
#: instead of dominating wall-clock, while dedicated watchdog tests
#: keep the long default.
HANG_SECONDS = float(os.environ.get("REPRO_CHAOS_HANG_S", "30.0"))

DEFAULT_PROBABILITY = 0.2

#: (seed, {site: probability}) or None when chaos is off.
_config: Optional[Tuple[int, Dict[str, float]]] = None
_resolved = False
#: Per-site call counters (the implicit key for unkeyed call sites).
_counters: Dict[str, int] = {}


def _parse_spec(spec: str) -> Tuple[int, Dict[str, float]]:
    seed: Optional[int] = None
    prob = DEFAULT_PROBABILITY
    sites = None
    for field in spec.split(","):
        field = field.strip()
        if not field:
            continue
        if "=" not in field:
            seed = int(field)
            continue
        key, _, value = field.partition("=")
        key = key.strip().lower()
        if key == "seed":
            seed = int(value)
        elif key == "p":
            prob = float(value)
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"chaos probability {prob} outside [0, 1]")
        elif key == "sites":
            sites = [s.strip() for s in value.split("|") if s.strip()]
            unknown = [s for s in sites if s not in KNOWN_SITES]
            if unknown:
                raise ValueError(f"unknown chaos sites {unknown}")
        else:
            raise ValueError(f"unknown chaos spec field {key!r}")
    if seed is None:
        raise ValueError(f"chaos spec {spec!r} does not name a seed")
    chosen = sites if sites is not None else sorted(KNOWN_SITES)
    return seed, {site: prob for site in chosen}


def configure(spec: Optional[str]) -> None:
    """Install a chaos configuration for this process (None = off)."""
    global _config, _resolved
    _resolved = True
    _counters.clear()
    _config = None if not spec else _parse_spec(spec)


def _ensure_resolved() -> None:
    global _resolved
    if _resolved:
        return
    configure(os.environ.get("REPRO_CHAOS"))


def current_config() -> Optional[Tuple[int, Dict[str, float]]]:
    """The resolved configuration, for shipping to worker processes."""
    _ensure_resolved()
    return _config


def apply_config(config: Optional[Tuple[int, Dict[str, float]]]) -> None:
    """Adopt a parent process's :func:`current_config` in a worker."""
    global _config, _resolved
    _resolved = True
    _counters.clear()
    _config = config


def is_active() -> bool:
    """True iff any site can fire in this process."""
    _ensure_resolved()
    return _config is not None


def _draw(seed: int, site: str, key: object) -> float:
    """Deterministic uniform draw in [0, 1) for (seed, site, key)."""
    digest = hashlib.sha256(f"{seed}|{site}|{key!r}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def should_fire(site: str, key: object = None) -> bool:
    """Decide whether the fault at *site* fires for this call.

    Args:
        site: A name from :data:`KNOWN_SITES`.
        key: Stable identity of this opportunity (e.g. ``(item, attempt)``).
            ``None`` uses a per-process, per-site call counter, so
            successive unkeyed calls still draw fresh decisions.
    """
    _ensure_resolved()
    if _config is None:
        return False
    assert site in KNOWN_SITES, f"unknown chaos site {site!r}"
    seed, sites = _config
    prob = sites.get(site)
    if prob is None:
        return False
    if key is None:
        count = _counters.get(site, 0)
        _counters[site] = count + 1
        key = count
    return _draw(seed, site, key) < prob


@contextmanager
def scoped(
    seed: int,
    sites: Optional[Dict[str, float]] = None,
    p: float = 1.0,
) -> Iterator[None]:
    """Test helper: enable chaos for the enclosed block, then restore.

    Args:
        seed: Chaos seed.
        sites: ``{site: probability}``; default is every known site at *p*.
        p: Probability used when *sites* is not given.
    """
    global _config, _resolved
    _ensure_resolved()
    saved_config, saved_counters = _config, dict(_counters)
    _counters.clear()
    chosen = (
        dict(sites)
        if sites is not None
        else {site: p for site in sorted(KNOWN_SITES)}
    )
    unknown = [s for s in chosen if s not in KNOWN_SITES]
    if unknown:
        raise ValueError(f"unknown chaos sites {unknown}")
    _config = (seed, chosen)
    try:
        yield
    finally:
        _config = saved_config
        _counters.clear()
        _counters.update(saved_counters)
