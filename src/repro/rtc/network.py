"""Networks of processing components (modular performance analysis)."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Union

from repro._numeric import Q, is_inf
from repro.errors import AnalysisError
from repro.minplus.convolution import min_plus_conv
from repro.minplus.curve import Curve
from repro.minplus.deviation import horizontal_deviation
from repro.rtc.gpc import GpcResult, gpc

__all__ = ["ChainResult", "chain_analysis", "end_to_end_service"]


@dataclass(frozen=True)
class ChainResult:
    """Result of analysing a chain of components.

    Attributes:
        hops: Per-hop GPC results, in order.
        sum_of_delays: Sum of per-hop delay bounds.
        end_to_end_delay: Delay bound against the convolved service
            (pay-bursts-only-once); never larger than the sum of delays.
    """

    hops: List[GpcResult]
    sum_of_delays: Fraction
    end_to_end_delay: Fraction


def end_to_end_service(
    betas: Sequence[Curve], backend: Optional[str] = None
) -> Curve:
    """The service curve of a tandem of resources: min-plus convolution.

    A flow traversing resources with lower service curves ``beta_1 ...
    beta_n`` receives the end-to-end service ``beta_1 (*) ... (*) beta_n``
    — the basis of the pay-bursts-only-once principle.
    """
    if not betas:
        raise AnalysisError("end_to_end_service needs at least one curve")
    acc = betas[0]
    for b in betas[1:]:
        acc = min_plus_conv(acc, b, on_dip="raise", backend=backend)
    return acc


def chain_analysis(
    alpha: Curve, betas: Sequence[Curve], backend: Optional[str] = None
) -> ChainResult:
    """Analyse a flow through a chain of greedy components.

    Args:
        alpha: Upper arrival curve entering the first component.
        betas: Lower service curves of the traversed resources, in order.

    Returns:
        Per-hop results plus the two end-to-end bounds (hop sum vs.
        pay-bursts-only-once).
    """
    hops: List[GpcResult] = []
    current = alpha
    total = Q(0)
    for beta in betas:
        result = gpc(current, beta, backend=backend)
        if is_inf(result.delay):
            raise AnalysisError("a hop has an infinite delay bound")
        hops.append(result)
        total += result.delay
        current = result.output_arrival
    e2e_beta = end_to_end_service(betas, backend=backend)
    e2e = horizontal_deviation(alpha, e2e_beta, backend=backend)
    if is_inf(e2e):
        raise AnalysisError("end-to-end deviation is infinite")
    return ChainResult(hops=hops, sum_of_delays=total, end_to_end_delay=e2e)
