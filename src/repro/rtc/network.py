"""Networks of processing components (modular performance analysis)."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro._numeric import Q, is_inf
from repro.errors import AnalysisError, CurveError
from repro.minplus import kernels
from repro.minplus.convolution import min_plus_conv
from repro.minplus.curve import Curve
from repro.minplus.deviation import horizontal_deviation
from repro.parallel.plane import JobsLike, parallel_map, resolve_jobs
from repro.rtc.gpc import GpcResult, gpc

__all__ = [
    "ChainResult",
    "chain_analysis",
    "analyze_chains",
    "end_to_end_service",
]


@dataclass(frozen=True)
class ChainResult:
    """Result of analysing a chain of components.

    Attributes:
        hops: Per-hop GPC results, in order.
        sum_of_delays: Sum of per-hop delay bounds.
        end_to_end_delay: Delay bound against the convolved service
            (pay-bursts-only-once); never larger than the sum of delays.
    """

    hops: List[GpcResult]
    sum_of_delays: Fraction
    end_to_end_delay: Fraction


def end_to_end_service(
    betas: Sequence[Curve],
    backend: Optional[str] = None,
    jobs: JobsLike = None,
) -> Curve:
    """The service curve of a tandem of resources: min-plus convolution.

    A flow traversing resources with lower service curves ``beta_1 ...
    beta_n`` receives the end-to-end service ``beta_1 (*) ... (*) beta_n``
    — the basis of the pay-bursts-only-once principle.

    With ``jobs > 1`` the fold runs as a balanced tree across worker
    processes: min-plus convolution is associative and curve
    normalisation is canonical, so the tree produces the same curve as
    the left fold, segment for segment.  Should any pairing surface a
    dip error the fold is re-run serially, so error behaviour (which dip
    is reported) is exactly the serial one.
    """
    if not betas:
        raise AnalysisError("end_to_end_service needs at least one curve")
    betas = list(betas)
    if resolve_jobs(jobs, n_items=len(betas) // 2) > 1:
        level = betas
        try:
            while len(level) > 1:
                pairs = [
                    (level[i], level[i + 1], backend)
                    for i in range(0, len(level) - 1, 2)
                ]
                reduced = parallel_map(_conv_pair, pairs, jobs=jobs)
                if len(level) % 2:
                    reduced.append(level[-1])
                level = reduced
            return level[0]
        except CurveError:
            pass  # fall through: report the dip the serial fold finds
    acc = betas[0]
    for b in betas[1:]:
        acc = min_plus_conv(acc, b, on_dip="raise", backend=backend)
    return acc


def _conv_pair(pair: Tuple[Curve, Curve, Optional[str]]) -> Curve:
    a, b, backend = pair
    return min_plus_conv(a, b, on_dip="raise", backend=backend)


def chain_analysis(
    alpha: Curve,
    betas: Sequence[Curve],
    backend: Optional[str] = None,
    jobs: JobsLike = None,
) -> ChainResult:
    """Analyse a flow through a chain of greedy components.

    Args:
        alpha: Upper arrival curve entering the first component.
        betas: Lower service curves of the traversed resources, in order.
        backend: Kernel backend override.
        jobs: Run the hop propagation and the pay-bursts-only-once
            convolution concurrently in worker processes.  The two parts
            are independent (the e2e bound uses only *alpha* and the raw
            *betas*), and part order matches serial evaluation order, so
            results and raised errors are bit-identical to ``jobs=1``.

    Returns:
        Per-hop results plus the two end-to-end bounds (hop sum vs.
        pay-bursts-only-once).
    """
    betas = list(betas)
    parts = parallel_map(
        _chain_part,
        [("hops", alpha, betas, backend), ("e2e", alpha, betas, backend)],
        jobs=jobs,
    )
    hops, total = parts[0]
    e2e = parts[1]
    return ChainResult(hops=hops, sum_of_delays=total, end_to_end_delay=e2e)


def _chain_part(part):
    """One independent half of a chain analysis (hop fold or e2e bound)."""
    kind, alpha, betas, backend = part
    if kind == "hops":
        hops: List[GpcResult] = []
        current = alpha
        total = Q(0)
        for beta in betas:
            result = gpc(current, beta, backend=backend)
            if is_inf(result.delay):
                raise AnalysisError("a hop has an infinite delay bound")
            hops.append(result)
            total += result.delay
            current = result.output_arrival
        return (hops, total)
    if resolve_jobs(None, n_items=len(betas) // 2) <= 1:
        # Serial fold: the fused chain lowers each curve once, folds the
        # tandem, and derives the deviation from the folded intervals —
        # one memo entry covers the whole pay-bursts-only-once bound.
        fused = kernels.fused_conv_hdev(alpha, betas, backend=backend)
        if fused is not None:
            e2e, _ = fused
            if is_inf(e2e):
                raise AnalysisError("end-to-end deviation is infinite")
            return e2e
    e2e_beta = end_to_end_service(betas, backend=backend)
    e2e = horizontal_deviation(alpha, e2e_beta, backend=backend)
    if is_inf(e2e):
        raise AnalysisError("end-to-end deviation is infinite")
    return e2e


def analyze_chains(
    chains: Sequence[Tuple[Curve, Sequence[Curve]]],
    backend: Optional[str] = None,
    jobs: JobsLike = None,
) -> List[ChainResult]:
    """Analyse many independent flows, one :func:`chain_analysis` each.

    Args:
        chains: ``(alpha, betas)`` per flow.
        backend: Kernel backend override applied to every flow.
        jobs: Fan the flows out over worker processes; result order
            follows *chains* and the first failing flow's error (in
            input order) is raised, as a serial loop would.
    """
    items = [(alpha, list(betas), backend) for alpha, betas in chains]
    return parallel_map(_chain_case, items, jobs=jobs)


def _chain_case(item) -> ChainResult:
    alpha, betas, backend = item
    return chain_analysis(alpha, betas, backend=backend)
