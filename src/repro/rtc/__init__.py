"""Classical Real-Time Calculus components and networks.

The modular-performance-analysis layer: greedy processing components
(GPC) consume an upper arrival curve and a lower service curve and emit
delay/backlog bounds plus output curves for downstream components.  The
structural delay analysis plugs into this framework wherever a single
component's workload is structural: its input is the same service curve,
and its output arrival curve is the request bound shifted by the delay
bound.
"""

from repro.rtc.gpc import GpcResult, gpc
from repro.rtc.network import (
    analyze_chains,
    chain_analysis,
    end_to_end_service,
)

__all__ = [
    "GpcResult",
    "gpc",
    "analyze_chains",
    "chain_analysis",
    "end_to_end_service",
]
