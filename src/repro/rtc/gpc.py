"""The greedy processing component (GPC) of real-time calculus."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Union

from repro._numeric import INF, Q, is_inf
from repro.errors import AnalysisError
from repro.minplus import kernels
from repro.minplus.convolution import min_plus_deconv
from repro.minplus.curve import Curve
from repro.minplus.deviation import horizontal_deviation, vertical_deviation

__all__ = ["GpcResult", "gpc"]


@dataclass(frozen=True)
class GpcResult:
    """Bounds and output curves of one greedy processing component.

    Attributes:
        delay: Worst-case delay bound (horizontal deviation); may be
            :data:`~repro._numeric.INF`.
        backlog: Worst-case backlog bound (vertical deviation).
        output_arrival: Upper arrival curve of the processed stream
            offered to the next component.
        remaining_service: Lower service curve left for lower-priority
            components on the same resource.
    """

    delay: Union[Fraction, object]
    backlog: Union[Fraction, object]
    output_arrival: Curve
    remaining_service: Curve


def gpc(
    alpha: Curve, beta: Curve, backend: Optional[str] = None
) -> GpcResult:
    """Analyse one greedy processing component.

    Args:
        alpha: Upper arrival curve of the input stream.
        beta: Lower service curve of the resource.
        backend: Kernel backend override (see
            :mod:`repro.minplus.backend`); bounds are identical under
            both backends.

    Returns:
        Delay/backlog bounds and the output curves:

        * ``output_arrival = alpha (/) beta`` — the classical sound bound
          on the departures (deconvolution);
        * ``remaining_service = sup-closure of (beta - alpha)`` clipped at
          zero — what a lower-priority component still receives.

    Raises:
        AnalysisError: if the arrival long-run rate exceeds the service
            rate (every bound would be infinite).
    """
    if alpha.tail_rate > beta.tail_rate:
        raise AnalysisError(
            f"arrival rate {alpha.tail_rate} exceeds service rate "
            f"{beta.tail_rate}; component overloaded"
        )
    fused = kernels.fused_deconv_hdev(alpha, beta, backend=backend)
    if fused is not None:
        delay, backlog, output = fused
    else:
        delay = horizontal_deviation(alpha, beta, backend=backend)
        backlog = vertical_deviation(alpha, beta)
        output = min_plus_deconv(alpha, beta, on_dip="fill", backend=backend)
    remaining = (beta - alpha).running_max().nonneg()
    return GpcResult(
        delay=delay,
        backlog=backlog,
        output_arrival=output,
        remaining_service=remaining,
    )
