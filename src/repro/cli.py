"""Command-line interface: analyse a task file against a service curve.

Usage::

    repro-analyze task.json --rate 1/2 --latency 4
    repro-analyze task.json --rate 1 --tdma-slot 2 --tdma-frame 8
    python -m repro.cli task.json --rate 1/2 --latency 4 --per-job --dot g.dot
    python -m repro.cli serve --port 8177 --jobs auto
    python -m repro.cli cluster --workers 4 --port 8178
    python -m repro.cli calibrate --reps 3
    python -m repro.cli diff base.json edited.json --json
    python -m repro.cli whatif task.json --rate 1/2 --edits edits.json
    python -m repro.cli mp dag1.json dag2.dot -m 4 --policy rm

The ``serve`` subcommand boots the analysis service
(:mod:`repro.service`): an HTTP/JSON front end with micro-batching,
admission control and a metrics plane.  ``cluster`` fronts a fleet of
such workers with cache-aware consistent-hash routing
(:mod:`repro.cluster`).  The ``calibrate`` subcommand
runs the kernel microbenchmark and persists a per-(op, size) cost table
that the ``auto`` backend consults to dispatch each min-plus operation
to the exact or the hybrid tier (:mod:`repro.minplus.costmodel`).
``diff`` prints the structural blast radius of a model edit
(:func:`repro.drt.digest.structural_diff`) and ``whatif`` runs a warm
incremental sweep of model edits (:mod:`repro.whatif`).  ``mp`` analyses
parallel DAG tasks on identical multiprocessors (:mod:`repro.mp`):
per-task long-path response-time bounds or a global FP/RM
schedulability verdict.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from fractions import Fraction

from repro._numeric import Q
from repro.core.baselines import (
    concave_hull_delay,
    sporadic_delay,
    token_bucket_delay,
)
from repro.core.delay import structural_delays_per_job
from repro.curves.service import rate_latency_service, tdma_service
from repro.drt.utilization import linear_request_bound, utilization
from repro.errors import ReproError, UnboundedBusyWindowError
from repro.io.dot import task_to_dot
from repro.io.json_io import load_task
from repro.minplus import backend as backend_mod
from repro.parallel import cache as result_cache
from repro.parallel import plane
from repro.resilience import Budget, bounded_delay

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Worst-case delay analysis of structural real-time workload "
            "(DATE 2015 reproduction)"
        ),
    )
    parser.add_argument("task", help="task JSON file (see repro.io.json_io)")
    parser.add_argument("--rate", required=True, help="service rate, e.g. 1/2")
    parser.add_argument("--latency", default="0", help="service latency")
    parser.add_argument("--tdma-slot", help="TDMA slot length (enables TDMA)")
    parser.add_argument("--tdma-frame", help="TDMA frame length")
    parser.add_argument(
        "--per-job", action="store_true", help="also print per-job-type delays"
    )
    parser.add_argument(
        "--baselines", action="store_true", help="also print abstraction baselines"
    )
    parser.add_argument(
        "--backlog", action="store_true", help="also print the backlog bound"
    )
    parser.add_argument(
        "--min-rate",
        metavar="BUDGET",
        help="synthesise the minimal service rate meeting this delay budget",
    )
    parser.add_argument(
        "--plot", action="store_true", help="render an ASCII chart of the analysis"
    )
    parser.add_argument("--dot", help="write the task graph to this DOT file")
    parser.add_argument(
        "--backend",
        choices=backend_mod.BACKENDS,
        help=(
            "min-plus kernel backend: 'exact' (pure rational arithmetic), "
            "'hybrid' (vectorized float64 screens with certified exact "
            "fallback; identical results), 'auto' (per-op cost-model "
            "dispatch between the two; default when numpy is available) "
            "or 'native' (hybrid plus a compiled pruning inner loop, "
            "built on first use and falling back to hybrid)"
        ),
    )
    parser.add_argument(
        "--jobs",
        metavar="N",
        help=(
            "worker processes for fan-out analyses ('auto' = one per "
            "CPU; default: REPRO_JOBS or serial); results are "
            "bit-identical to serial runs"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "persistent result cache directory (default: REPRO_CACHE_DIR "
            "or off); an unwritable directory falls back to an in-memory "
            "cache with a warning"
        ),
    )
    parser.add_argument(
        "--deadline",
        metavar="SECONDS",
        help=(
            "wall-clock analysis budget; when exhausted, a sound "
            "over-approximate delay bound is reported instead of an "
            "exact one (marked 'degraded')"
        ),
    )
    parser.add_argument(
        "--budget",
        metavar="N",
        help=(
            "cap on analysis work units (frontier expansions and "
            "amortised kernel charges); exhaustion degrades like "
            "--deadline"
        ),
    )
    parser.add_argument(
        "--max-segments",
        metavar="K",
        help=(
            "segment budget of the degraded request-bound approximation "
            "(default 32; needs --deadline or --budget to matter)"
        ),
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip semantic validation of the loaded task file",
    )
    return parser


def _parse_budget(args) -> "Budget | None":
    """A Budget from --deadline/--budget/--max-segments, or None."""
    if not (args.deadline or args.budget or args.max_segments):
        return None
    try:
        return Budget(
            deadline=float(args.deadline) if args.deadline else None,
            max_expansions=int(args.budget) if args.budget else None,
            max_segments=int(args.max_segments) if args.max_segments else None,
        )
    except ValueError as exc:
        raise ReproError(f"invalid budget: {exc}") from exc


def _calibrate_main(argv) -> int:
    """``repro-analyze calibrate``: benchmark kernels, persist cost table."""
    from repro.minplus import costmodel

    parser = argparse.ArgumentParser(
        prog="repro-analyze calibrate",
        description=(
            "Run the one-shot kernel microbenchmark and persist the "
            "per-(op, size) cost table consulted by the 'auto' backend"
        ),
    )
    parser.add_argument(
        "--sizes",
        metavar="N,N,...",
        help="comma-separated curve sizes to probe (default: "
        + ",".join(str(n) for n in costmodel.CALIBRATION_SIZES),
    )
    parser.add_argument(
        "--reps", type=int, default=3, help="timing repetitions per cell"
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="soft wall-clock cap on the whole calibration",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help=(
            "where to write the table (default: REPRO_COSTMODEL or "
            "<cache-dir>/costmodel.json; '-' prints without persisting)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent cache directory the table is stored next to",
    )
    args = parser.parse_args(argv)
    try:
        if args.cache_dir:
            result_cache.configure(args.cache_dir)
        sizes = costmodel.CALIBRATION_SIZES
        if args.sizes:
            sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
        persist = args.out != "-"
        rows = costmodel.calibrate(
            sizes=sizes,
            reps=args.reps,
            time_budget_s=args.time_budget,
            persist=persist and args.out is None,
        )
        print(f"{'op':>6} {'n':>6} {'exact_s':>12} {'hybrid_s':>12}  choice")
        for row in rows:
            print(
                f"{row['op']:>6} {row['n']:>6} {row['exact_s']:>12.6f} "
                f"{row['hybrid_s']:>12.6f}  {row['choice']}"
            )
        if persist and args.out is not None:
            costmodel.save(to=args.out)
            print(f"cost table written to {args.out}")
        elif persist:
            dest = costmodel.path()
            if dest is None:
                print(
                    "cost table installed for this process only "
                    "(no cache dir; set --cache-dir, REPRO_CACHE_DIR or "
                    "REPRO_COSTMODEL to persist)"
                )
            else:
                print(f"cost table written to {dest}")
        else:
            print("cost table not persisted (--out -)")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _diff_main(argv) -> int:
    """``repro-analyze diff``: structural diff of two task files."""
    import json

    from repro.drt.digest import structural_diff

    parser = argparse.ArgumentParser(
        prog="repro-analyze diff",
        description=(
            "Classify the blast radius of the edit taking one task "
            "definition to another: changed vertices/edges, the "
            "affected reachability cone, and the carried remainder "
            "whose cached analyses survive the edit"
        ),
    )
    parser.add_argument("old", help="base task JSON file")
    parser.add_argument("new", help="edited task JSON file")
    parser.add_argument(
        "--json", action="store_true", help="print the diff as JSON"
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip semantic validation of the loaded task files",
    )
    args = parser.parse_args(argv)
    try:
        old = load_task(args.old, validate=not args.no_validate)
        new = load_task(args.new, validate=not args.no_validate)
        diff = structural_diff(old, new)
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2))
            return 0
        if not diff.touched:
            print("tasks are structurally identical")
            return 0
        for label, values in (
            ("added vertices", sorted(diff.added_vertices)),
            ("removed vertices", sorted(diff.removed_vertices)),
            ("changed vertices", sorted(diff.changed_vertices)),
            ("added edges", sorted(diff.added_edges)),
            ("removed edges", sorted(diff.removed_edges)),
            ("changed edges", sorted(diff.changed_edges)),
        ):
            if values:
                shown = ", ".join(
                    v if isinstance(v, str) else f"{v[0]}->{v[1]}"
                    for v in values
                )
                print(f"{label}: {shown}")
        total = len(new.jobs)
        print(
            f"affected cone: {len(diff.affected_cone)} of {total} vertices "
            f"({', '.join(sorted(diff.affected_cone))})"
        )
        print(
            f"carried (reusable) vertices: {len(diff.carried_vertices)} "
            f"of {total}"
        )
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _whatif_main(argv) -> int:
    """``repro-analyze whatif``: warm sweep of model edits."""
    import json

    from repro.whatif import edit_from_dict, whatif_sweep

    parser = argparse.ArgumentParser(
        prog="repro-analyze whatif",
        description=(
            "Re-analyse a base task under a batch of model edits "
            "(WCET scaling, edge retiming/add/remove, tightened "
            "service), reusing the warm base exploration incrementally; "
            "bounds are bit-identical to from-scratch analyses"
        ),
    )
    parser.add_argument("task", help="base task JSON file")
    parser.add_argument("--rate", required=True, help="service rate, e.g. 1/2")
    parser.add_argument("--latency", default="0", help="service latency")
    parser.add_argument(
        "--edits",
        required=True,
        metavar="FILE",
        help=(
            "JSON file holding a list of edit objects, e.g. "
            '[{"op": "set_separation", "src": "a", "dst": "b", '
            '"separation": "7"}, {"op": "scale_wcet", "factor": "11/10"}]'
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="print results as JSON lines"
    )
    parser.add_argument(
        "--jobs",
        metavar="N",
        help="worker processes for the sweep ('auto' = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent result cache directory (default: REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip semantic validation of the loaded task file",
    )
    args = parser.parse_args(argv)
    try:
        if args.cache_dir:
            result_cache.configure(args.cache_dir)
        task = load_task(args.task, validate=not args.no_validate)
        beta = rate_latency_service(
            Fraction(args.rate), Fraction(args.latency)
        )
        try:
            specs = json.loads(open(args.edits).read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {args.edits}: {exc}", file=sys.stderr)
            return 2
        if not isinstance(specs, list) or not specs:
            print(
                f"error: {args.edits} must hold a non-empty JSON list",
                file=sys.stderr,
            )
            return 2
        edits = [edit_from_dict(spec) for spec in specs]
        results = whatif_sweep(task, beta, edits, jobs=args.jobs)
        failures = 0
        for res in results:
            if args.json:
                print(json.dumps(_whatif_result_dict(res)))
                continue
            label = json.dumps(res.edit)
            if not res.ok:
                failures += 1
                print(f"{label}: {res.error_code}: {res.error}")
                continue
            s = res.summary
            verdict = "ok" if s.meets_deadlines else "DEADLINE MISS"
            print(
                f"{label}: delay={s.delay} backlog={s.backlog} "
                f"busy_window={s.busy_window} [{verdict}] "
                f"(cone {res.cone_size}/{res.total_vertices}, "
                f"carried {res.carried_vertices})"
            )
        if not args.json:
            ok = len(results) - failures
            print(f"{ok}/{len(results)} edits analysed, {failures} failed")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _whatif_result_dict(res) -> dict:
    """JSON form of one sweep result (CLI --json; mirrors the service)."""
    out = {
        "edit": res.edit,
        "ok": res.ok,
        "cone_size": res.cone_size,
        "carried_vertices": res.carried_vertices,
        "total_vertices": res.total_vertices,
    }
    if not res.ok:
        out["error"] = {"code": res.error_code, "message": res.error}
        return out
    s = res.summary
    out["summary"] = {
        "task": s.task,
        "delay": str(s.delay),
        "backlog": str(s.backlog),
        "busy_window": str(s.busy_window),
        "per_job": {j: str(d) for j, d in s.per_job.items()},
        "meets_deadlines": s.meets_deadlines,
        "witness_vertices": (
            None if s.witness_vertices is None else list(s.witness_vertices)
        ),
    }
    return out


def _mp_main(argv) -> int:
    """``repro-analyze mp``: multiprocessor DAG analysis."""
    import json

    from repro.mp import (
        dag_rta,
        global_fp_schedulable,
        global_rm_schedulable,
        load_dag,
        load_dag_dot,
    )

    parser = argparse.ArgumentParser(
        prog="repro-analyze mp",
        description=(
            "Analyse parallel DAG tasks on an identical multiprocessor: "
            "per-task response-time bounds (Graham + long-path RTA) or "
            "a global FP/RM schedulability verdict with carry-in/body/"
            "carry-out interference bounds"
        ),
    )
    parser.add_argument(
        "tasks",
        nargs="+",
        metavar="TASK",
        help="DAG task files (JSON, or DOT when the name ends in .dot)",
    )
    parser.add_argument(
        "-m",
        "--processors",
        required=True,
        type=int,
        metavar="M",
        dest="m",
        help="number of identical processors",
    )
    parser.add_argument(
        "--policy",
        choices=("rta", "fp", "rm"),
        default="rta",
        help=(
            "'rta' bounds each task in isolation; 'fp' runs the global "
            "fixed-priority test in input order (highest first); 'rm' "
            "orders by period first (default: rta)"
        ),
    )
    parser.add_argument(
        "--max-paths",
        type=int,
        metavar="K",
        help="cap on vertex-disjoint long paths the RTA extracts",
    )
    parser.add_argument(
        "--max-iterations",
        type=int,
        metavar="N",
        help="fixpoint iteration cap of the global FP/RM test",
    )
    parser.add_argument(
        "--json", action="store_true", help="print results as JSON"
    )
    parser.add_argument(
        "--deadline",
        metavar="SECONDS",
        help=(
            "wall-clock budget for --policy rta; when exhausted the "
            "sound Graham bound is reported instead (marked 'degraded')"
        ),
    )
    parser.add_argument(
        "--budget",
        metavar="N",
        help="cap on analysis work units; exhaustion degrades like --deadline",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent result cache directory (default: REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip semantic validation of the loaded task files",
    )
    args = parser.parse_args(argv)
    args.max_segments = None
    try:
        if args.cache_dir:
            result_cache.configure(args.cache_dir)
        validate = not args.no_validate
        dags = [
            load_dag_dot(path, validate=validate)
            if path.endswith(".dot")
            else load_dag(path, validate=validate)
            for path in args.tasks
        ]
        budget = _parse_budget(args)
        if args.policy == "rta":
            all_ok = True
            for dag in dags:
                res = dag_rta(
                    dag, args.m, budget=budget, max_paths=args.max_paths
                )
                all_ok = all_ok and res.schedulable
                if args.json:
                    print(
                        json.dumps(
                            {
                                "task": dag.name,
                                "m": res.m,
                                "response": str(res.response),
                                "graham": str(res.graham),
                                "longest_path": str(res.longest_path),
                                "volume": str(res.volume),
                                "deadline": str(dag.deadline),
                                "schedulable": res.schedulable,
                                "degraded": res.degraded,
                                "level": res.level,
                            }
                        )
                    )
                    continue
                verdict = "OK" if res.schedulable else "MISS"
                note = " (degraded: graham)" if res.degraded else ""
                print(
                    f"{dag.name}: response<={res.response} "
                    f"(graham {res.graham}, len {res.longest_path}, "
                    f"vol {res.volume}, deadline {dag.deadline}) "
                    f"[{verdict}]{note}"
                )
            return 0 if all_ok else 3
        test = global_fp_schedulable if args.policy == "fp" else (
            global_rm_schedulable
        )
        kwargs = {}
        if args.max_iterations is not None:
            kwargs["max_iterations"] = args.max_iterations
        res = test(dags, args.m, **kwargs)
        if args.json:
            print(
                json.dumps(
                    {
                        "policy": res.policy,
                        "m": res.m,
                        "schedulable": res.schedulable,
                        "order": list(res.order),
                        "responses": {
                            name: None if bound is None else str(bound)
                            for name, bound in res.responses.items()
                        },
                        "failures": [
                            [name, str(bound), str(deadline)]
                            for name, bound, deadline in res.failures
                        ],
                    }
                )
            )
            return 0 if res.schedulable else 3
        print(
            f"global {res.policy.upper()} on m={res.m}: "
            + ("SCHEDULABLE" if res.schedulable else "NOT schedulable")
        )
        for name in res.order:
            bound = res.responses[name]
            print(
                f"  {name}: "
                + ("response not established" if bound is None else f"R<={bound}")
            )
        for name, bound, deadline in res.failures:
            print(f"  {name}: bound {bound} exceeds deadline {deadline}")
        return 0 if res.schedulable else 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        from repro.service.server import serve_main

        return serve_main(list(argv[1:]))
    if argv and argv[0] == "cluster":
        from repro.cluster.fleet import cluster_main

        return cluster_main(list(argv[1:]))
    if argv and argv[0] == "calibrate":
        return _calibrate_main(list(argv[1:]))
    if argv and argv[0] == "diff":
        return _diff_main(list(argv[1:]))
    if argv and argv[0] == "whatif":
        return _whatif_main(list(argv[1:]))
    if argv and argv[0] == "mp":
        return _mp_main(list(argv[1:]))
    args = _build_parser().parse_args(argv)
    try:
        if args.backend:
            backend_mod.set_backend(args.backend)
        if args.jobs:
            try:
                plane.set_default_jobs(args.jobs)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        if args.cache_dir:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result_cache.configure(args.cache_dir)
            for w in caught:
                print(f"warning: {w.message}", file=sys.stderr)
        be = backend_mod.get_backend()
        if be == "auto":
            from repro.minplus import costmodel

            be = f"auto({costmodel.describe()})"
        print(
            f"engine: backend={be} "
            f"jobs={plane.resolve_jobs()} cache={result_cache.describe()}"
        )
        task = load_task(args.task, validate=not args.no_validate)
        budget = _parse_budget(args)
        if args.tdma_slot:
            if not args.tdma_frame:
                print("error: --tdma-frame required with --tdma-slot", file=sys.stderr)
                return 2
            beta = tdma_service(
                Fraction(args.rate),
                Fraction(args.tdma_slot),
                Fraction(args.tdma_frame),
                horizon=Fraction(args.tdma_frame) * 64,
            )
        else:
            beta = rate_latency_service(Fraction(args.rate), Fraction(args.latency))
        print(f"task {task.name}: {len(task.jobs)} jobs, {len(task.edges)} edges")
        burst, rho = linear_request_bound(task)
        print(f"utilization: {utilization(task)}  linear bound: {burst} + {rho}*t")
        result = bounded_delay(task, beta, budget=budget)
        if result.degraded:
            print(
                f"structural worst-case delay: <= {result.delay} "
                "(sound over-approximation)"
            )
            print(f"  degraded: level={result.level} ({result.reason})")
            if result.explored_horizon is not None:
                print(f"  explored horizon: {result.explored_horizon}")
            if args.per_job or args.backlog or args.plot or args.min_rate:
                print(
                    "  (per-job/backlog/plot/min-rate skipped: "
                    "budget exhausted)"
                )
            if args.dot:
                with open(args.dot, "w") as fh:
                    fh.write(task_to_dot(task))
                print(f"wrote {args.dot}")
            return 0
        print(f"structural worst-case delay: {result.delay}")
        if result.level != "exact":
            print(f"  (completed on the {result.level} ladder rung)")
        print(f"  busy window: {result.busy_window}")
        print(f"  critical tuple: {result.critical_tuple}")
        print(f"  tuples explored: {result.tuple_count}")
        if args.per_job:
            print("per-job delays:")
            for job, delay in sorted(structural_delays_per_job(task, beta).items()):
                verdict = "OK" if delay <= task.deadline(job) else "MISS"
                print(f"  {job}: {delay} (deadline {task.deadline(job)}) {verdict}")
        if args.baselines:
            for label, fn in (
                ("concave hull", concave_hull_delay),
                ("token bucket", token_bucket_delay),
                ("sporadic", sporadic_delay),
            ):
                try:
                    print(f"{label} delay bound: {fn(task, beta)}")
                except UnboundedBusyWindowError:
                    print(f"{label} delay bound: unbounded (abstraction overload)")
        if args.backlog:
            from repro.core.backlog import structural_backlog

            b = structural_backlog(task, beta)
            print(f"worst-case backlog: {b.backlog}")
        if args.min_rate:
            from repro.core.sensitivity import min_service_rate

            budget = Fraction(args.min_rate)
            rate = min_service_rate(task, Fraction(args.latency), budget)
            print(
                f"minimal service rate for delay budget {budget} "
                f"(latency {args.latency}): {rate} (~{float(rate):.4f})"
            )
        if args.plot:
            from repro.core.busy_window import busy_window_bound
            from repro.viz import render_delay_analysis

            bw = busy_window_bound(task, beta)
            print(
                render_delay_analysis(
                    bw.rbf, beta, result.busy_window, result.delay
                )
            )
        if args.dot:
            with open(args.dot, "w") as fh:
                fh.write(task_to_dot(task))
            print(f"wrote {args.dot}")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
