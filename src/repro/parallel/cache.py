"""Persistent, content-addressed analysis result cache.

Whole-analysis results — :class:`~repro.core.delay.DelayResult`,
per-job delay maps, :class:`~repro.core.backlog.BacklogResult`,
:class:`~repro.sched.sp.SpResult`, :class:`~repro.sched.edf_delay.EdfDelayResult`
— are pure functions of the task definition, the service curve, and the
analysis parameters.  This module stores them on disk keyed by a SHA-256
over exactly those inputs (plus the library version and the active
kernel backend), so

* a warm re-run of a sweep skips every analysis it has seen before, and
* sibling worker processes of :mod:`repro.parallel.plane` share results
  through the filesystem instead of recomputing them per process.

Cached values are bit-identical to freshly computed ones: the key covers
every input that influences the result, curves and tasks digest their
exact rational coordinates (:meth:`repro.minplus.curve.Curve.digest`),
and values round-trip through :mod:`pickle` without loss (Fractions are
exact; curves re-intern on load).

The cache is **off by default**.  It activates when the
``REPRO_CACHE_DIR`` environment variable names a directory, when
:func:`configure` is called (the CLI's ``--cache-dir``), or inside plane
workers that inherit the parent's configuration.  An unwritable
directory degrades to a bounded in-memory store with a warning — never a
traceback.  Disk writes are atomic (temp file + ``os.replace``) and the
directory is LRU-capped by total size (``REPRO_CACHE_MAX_BYTES``,
default 256 MiB): stale entries are evicted oldest-access first.

Layout: ``<dir>/<key[:2]>/<key>.pkl``, one pickled result per file.
Invalidation is purely key-based — bumping the library version or
switching backend simply addresses different entries.
"""

from __future__ import annotations

import contextlib
import contextvars
import errno
import hashlib
import json
import os
import pickle
import tempfile
import time
import warnings
from typing import Iterable, Optional, Sequence, Tuple

from repro import perf
from repro.minplus import backend as backend_mod
from repro.resilience import chaos

__all__ = [
    "configure",
    "describe",
    "is_enabled",
    "active_dir",
    "task_digest",
    "analysis_key",
    "get",
    "put",
    "get_analysis",
    "put_analysis",
    "clear_memory",
    "current_config",
    "apply_config",
    "stats",
    "list_keys",
    "read_entry",
    "write_entry",
    "blob_digest",
    "placement_scope",
    "placement_of",
    "placements",
]

DEFAULT_MAX_BYTES = 256 * 1024 * 1024
_MEMORY_CAP = 1024  # entries kept by the in-memory fallback store

#: Attempts for one cache I/O operation before giving up (miss / no-op).
IO_RETRIES = 3
#: Base of the exponential backoff between I/O retries (seconds).
IO_BACKOFF = 0.01

#: Lazily resolved state: None until first use / configure().
_resolved = False
_dir: Optional[str] = None
_max_bytes = DEFAULT_MAX_BYTES
_memory_only = False
_memory: "dict[str, bytes]" = {}

#: Placement journal: entry key -> the routing key of the request the
#: entry was written under.  A cluster resize places *requests* on the
#: consistent-hash ring, so re-homing an entry needs to know which
#: request it belongs to — the key alone cannot say.  Disk-backed caches
#: additionally append each association to ``placements.jsonl`` inside
#: the cache directory (one JSON line per put; appends below PIPE_BUF
#: are atomic), so the journal survives restarts and is visible to
#: plane-worker subprocesses sharing the directory.
_PLACEMENT_FILE = "placements.jsonl"
_placement_var: "contextvars.ContextVar[Optional[str]]" = (
    contextvars.ContextVar("repro_cache_placement", default=None)
)
_placement_memory: "dict[str, str]" = {}


def _probe_dir(path: str) -> bool:
    """True iff *path* exists (or can be created) and is writable."""
    try:
        os.makedirs(path, exist_ok=True)
        with tempfile.NamedTemporaryFile(dir=path, prefix=".probe-"):
            pass
        return True
    except OSError:
        return False


def configure(
    cache_dir: Optional[str], max_bytes: Optional[int] = None
) -> bool:
    """Install the cache configuration for this process.

    Args:
        cache_dir: Directory for cached results; ``None`` disables the
            cache entirely (and clears the in-memory fallback).
        max_bytes: LRU size cap for the directory (default 256 MiB or
            ``REPRO_CACHE_MAX_BYTES``).

    Returns:
        True when the on-disk cache is active; False when disabled or
        degraded to the in-memory fallback (a :class:`RuntimeWarning` is
        emitted for the degraded case — callers like the CLI surface it
        without a traceback).
    """
    global _resolved, _dir, _max_bytes, _memory_only
    _resolved = True
    _memory.clear()
    _placement_memory.clear()
    _max_bytes = _env_max_bytes() if max_bytes is None else int(max_bytes)
    if cache_dir is None:
        _dir = None
        _memory_only = False
        return False
    if _probe_dir(cache_dir):
        _dir = cache_dir
        _memory_only = False
        return True
    _dir = None
    _memory_only = True
    warnings.warn(
        f"result cache directory {cache_dir!r} is not writable; "
        "falling back to a bounded in-memory cache",
        RuntimeWarning,
        stacklevel=2,
    )
    return False


def _env_max_bytes() -> int:
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        warnings.warn(
            f"ignoring invalid REPRO_CACHE_MAX_BYTES={raw!r}", RuntimeWarning
        )
        return DEFAULT_MAX_BYTES


def _ensure_resolved() -> None:
    """Adopt ``REPRO_CACHE_DIR`` on first use unless configured."""
    global _resolved
    if _resolved:
        return
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        configure(env)
    else:
        _resolved = True


def is_enabled() -> bool:
    """True iff lookups/stores go anywhere (disk or memory fallback)."""
    _ensure_resolved()
    return _dir is not None or _memory_only


def active_dir() -> Optional[str]:
    """The on-disk cache directory, or None (disabled / memory-only)."""
    _ensure_resolved()
    return _dir


def describe() -> str:
    """Human-readable cache mode for status lines: ``off``, ``memory``
    or the directory path."""
    _ensure_resolved()
    if _dir is not None:
        return _dir
    return "memory" if _memory_only else "off"


def clear_memory() -> None:
    """Drop the in-memory fallback store (per-job cache isolation)."""
    _memory.clear()


def current_config() -> Tuple[Optional[str], int, bool]:
    """The resolved configuration, for shipping to worker processes."""
    _ensure_resolved()
    return (_dir, _max_bytes, _memory_only)


def stats() -> "dict[str, object]":
    """Operational counters of the cache, for the service metrics plane.

    Combines this process's :mod:`repro.perf` cache counters (which, in
    a server, already include merged worker snapshots) with the current
    store shape.  ``hit_rate`` is hits / (hits + misses), or None before
    any lookup.  On-disk entry/byte totals are scanned lazily and only
    for disk-backed caches; scan errors degrade to None rather than
    raising — metrics must never take a server down.
    """
    _ensure_resolved()
    counters = perf.counters()
    hits = counters.get("rcache.hits", 0)
    misses = counters.get("rcache.misses", 0)
    looked = hits + misses
    entries = bytes_used = None
    if _dir is not None:
        try:
            entries = 0
            bytes_used = 0
            for sub in os.scandir(_dir):
                if not sub.is_dir():
                    continue
                for ent in os.scandir(sub.path):
                    if ent.name.endswith(".pkl"):
                        entries += 1
                        bytes_used += ent.stat().st_size
        except OSError:
            entries = bytes_used = None
    elif _memory_only:
        entries = len(_memory)
        bytes_used = sum(len(b) for b in _memory.values())
    return {
        "mode": describe(),
        "hits": hits,
        "misses": misses,
        "puts": counters.get("rcache.puts", 0),
        "evictions": counters.get("rcache.evictions", 0),
        "corrupt_evictions": counters.get("rcache.corrupt_evictions", 0),
        "io_retries": counters.get("rcache.io_retries", 0),
        "hit_rate": (hits / looked) if looked else None,
        "entries": entries,
        "bytes": bytes_used,
        "max_bytes": _max_bytes,
    }


def apply_config(config: Tuple[Optional[str], int, bool]) -> None:
    """Adopt a parent process's :func:`current_config` in a worker.

    A memory-only parent yields memory-only workers (each with its own
    store); the on-disk cache is genuinely shared through the
    filesystem.
    """
    global _resolved, _dir, _max_bytes, _memory_only
    _resolved = True
    _dir, _max_bytes, _memory_only = config


# ----------------------------------------------------------------------
# Keys and digests
# ----------------------------------------------------------------------


def task_digest(task) -> str:
    """Stable hex digest of a task definition (memoized on the task).

    Composed from the per-vertex and per-edge content digests of
    :mod:`repro.drt.digest` *in insertion order* — the order steers
    exploration tie-breaking, so two definitions that differ only in
    ordering address different cache entries (their results may report
    different, equally valid, critical tuples).

    The memo is guarded against in-place task mutation: if the
    definition changed since the digest was recorded, the task's entire
    analysis cache is dropped (every memo in it is stale) and the
    digest recomputed, so a mutated task can never be served another
    definition's cached results.

    :class:`repro.mp.model.DAGTask` instances (immutable by
    construction) carry their own memoized ``digest()`` and are
    dispatched to it, so multiprocessor requests share this keying
    path.
    """
    own_digest = getattr(task, "digest", None)
    if callable(own_digest):
        return own_digest()
    from repro.drt.digest import composed_task_digest, guard_cache

    cache = guard_cache(task)
    memo = cache.get("content_digest")
    if memo is None:
        memo = composed_task_digest(task)
        cache["content_digest"] = memo
    return memo


def analysis_key(kind: str, parts: Iterable[str]) -> str:
    """Content address for one analysis: SHA-256 over the library
    version, the active backend, the analysis kind, and the input
    digests/parameters."""
    from repro import __version__  # deferred: repro imports this module

    h = hashlib.sha256()
    h.update(f"{__version__}|{backend_mod.get_backend()}|{kind}".encode())
    for part in parts:
        h.update(b"|")
        h.update(str(part).encode("utf-8"))
    return h.hexdigest()


def get_analysis(kind: str, tasks, beta, extra: Sequence = ()) -> object:
    """Cached result of *kind* for (*tasks*, *beta*, *extra*), or None.

    *tasks* may be a single task or an ordered sequence (task sets are
    order-sensitive: SP priorities, EDF reporting order).
    """
    if not is_enabled():
        return None
    return get(_analysis_key(kind, tasks, beta, extra))


def put_analysis(kind: str, tasks, beta, value, extra: Sequence = ()) -> None:
    """Store *value* as the result of *kind* for (*tasks*, *beta*, *extra*)."""
    if not is_enabled():
        return
    put(_analysis_key(kind, tasks, beta, extra), value)


def _analysis_key(kind: str, tasks, beta, extra: Sequence) -> str:
    if not isinstance(tasks, (list, tuple)):
        tasks = (tasks,)
    parts = [task_digest(t) for t in tasks]
    parts.append(beta.digest())
    parts.extend(str(x) for x in extra)
    return analysis_key(kind, parts)


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------


def _path_for(key: str) -> str:
    return os.path.join(_dir, key[:2], key + ".pkl")


_MISSING = object()


def _read_blob(path: str):
    """Read an entry's bytes with bounded retries on transient I/O.

    Returns :data:`_MISSING` when the entry does not exist or stays
    unreadable after :data:`IO_RETRIES` attempts (EPERM on a hardened
    mount, EIO, ...) — an I/O problem is a *miss*, never an eviction:
    only provably corrupt data justifies deleting an entry.
    """
    for attempt in range(IO_RETRIES):
        try:
            if chaos.should_fire("cache.eperm.read"):
                raise PermissionError(
                    errno.EPERM, "chaos: injected read EPERM", path
                )
            with open(path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return _MISSING
        except OSError:
            if attempt + 1 < IO_RETRIES:
                perf.record("rcache.io_retries")
                time.sleep(IO_BACKOFF * (2**attempt))
    return _MISSING


def get(key: str) -> object:
    """The cached value under *key*, or None (miss / unreadable entry).

    A disk hit refreshes the entry's access time (LRU) and counts as
    ``rcache.hits``.  Transient read errors are retried with backoff
    (``rcache.io_retries``) and then treated as misses; truncated or
    corrupt entries are *evicted* and treated as misses — the cache must
    never turn a crash mid-write into a wrong answer, and atomic replace
    already makes that unlikely.
    """
    _ensure_resolved()
    if _memory_only:
        blob = _memory.get(key)
        if blob is None:
            perf.record("rcache.misses")
            return None
        perf.record("rcache.hits")
        return pickle.loads(blob)
    if _dir is None:
        return None
    path = _path_for(key)
    blob = _read_blob(path)
    if blob is _MISSING:
        perf.record("rcache.misses")
        return None
    try:
        value = pickle.loads(blob)
    except Exception:
        # Truncated/corrupt entries raise all over pickle's surface
        # (UnpicklingError, EOFError, ValueError, ImportError, ...);
        # whatever the shape, remove the entry and treat it as a miss.
        try:
            os.unlink(path)
        except OSError:
            pass
        perf.record("rcache.corrupt_evictions")
        perf.record("rcache.misses")
        return None
    try:
        os.utime(path)
    except OSError:
        pass
    perf.record("rcache.hits")
    return value


def _write_blob(path: str, blob: bytes) -> bool:
    """Atomically write an entry with bounded retries on transient I/O."""
    for attempt in range(IO_RETRIES):
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            if chaos.should_fire("cache.enospc"):
                raise OSError(
                    errno.ENOSPC, "chaos: injected disk full", path
                )
            if chaos.should_fire("cache.eperm.write"):
                raise PermissionError(
                    errno.EPERM, "chaos: injected write EPERM", path
                )
            data = blob
            # Injected *silent* storage faults: the write "succeeds" but
            # the entry is damaged.  get() must evict and recompute.
            if chaos.should_fire("cache.truncate"):
                data = blob[: len(blob) // 2]
            elif chaos.should_fire("cache.corrupt") and blob:
                data = blob[:-1] + bytes([blob[-1] ^ 0xFF])
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), prefix=".tmp-"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return True
        except OSError:
            if attempt + 1 < IO_RETRIES:
                perf.record("rcache.io_retries")
                time.sleep(IO_BACKOFF * (2**attempt))
    return False


def put(key: str, value: object) -> None:
    """Store *value* under *key* (atomic write, then LRU enforcement).

    Transient storage failures are retried with backoff
    (``rcache.io_retries``); persistent ones degrade silently to a
    no-op: the cache is an accelerator, never a correctness dependency.
    """
    _ensure_resolved()
    try:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return  # unpicklable results simply aren't cached
    if _memory_only:
        _memory[key] = blob
        while len(_memory) > _MEMORY_CAP:
            _memory.pop(next(iter(_memory)))
        _record_placement(key)
        perf.record("rcache.puts")
        return
    if _dir is None:
        return
    if not _write_blob(_path_for(key), blob):
        return
    _record_placement(key)
    perf.record("rcache.puts")
    _enforce_cap()


# ----------------------------------------------------------------------
# Raw entry transport (cluster cache migration)
# ----------------------------------------------------------------------
#
# A planned cluster resize moves warm entries between workers instead of
# cold-starting the fleet (:mod:`repro.parallel.transport`).  These
# helpers expose the store at the *blob* level: keys, raw pickled bytes,
# and a content digest over the bytes, so a transfer can be verified
# end-to-end without unpickling untrusted data mid-flight.


def blob_digest(blob: bytes) -> str:
    """SHA-256 hex digest of a raw entry blob (transfer verification)."""
    return hashlib.sha256(blob).hexdigest()


@contextlib.contextmanager
def placement_scope(tag: Optional[str]):
    """Tag every entry written inside the scope with routing key *tag*.

    The service worker wraps request execution in this scope so each
    cache entry records *which request* produced it; a cluster resize
    then re-homes entries by placing that routing key on the new ring —
    the exact consistent-hash movement delta, not a guess from the
    entry's own (unrelated) key.
    """
    token = _placement_var.set(tag)
    try:
        yield
    finally:
        _placement_var.reset(token)


def _record_placement(key: str, tag: Optional[str] = None) -> None:
    tag = _placement_var.get() if tag is None else tag
    if tag is None:
        return
    if _placement_memory.get(key) == tag:
        return
    _placement_memory[key] = tag
    if _dir is None:
        return
    line = json.dumps({"k": key, "p": tag}) + "\n"
    try:
        with open(
            os.path.join(_dir, _PLACEMENT_FILE), "a", encoding="utf-8"
        ) as fh:
            fh.write(line)
    except OSError:
        pass  # the journal is an accelerator for resizes, never required


def placements() -> "dict[str, str]":
    """The full placement journal, entry key -> routing key.

    Merges the on-disk journal (shared with plane subprocesses) with
    this process's in-memory mirror; torn or stale lines are skipped.
    Keys evicted from the store may linger here — consumers intersect
    with :func:`list_keys`.
    """
    _ensure_resolved()
    out: "dict[str, str]" = {}
    if _dir is not None:
        try:
            with open(
                os.path.join(_dir, _PLACEMENT_FILE), "r", encoding="utf-8"
            ) as fh:
                for line in fh:
                    try:
                        doc = json.loads(line)
                        out[str(doc["k"])] = str(doc["p"])
                    except (ValueError, KeyError, TypeError):
                        continue
        except OSError:
            pass
    out.update(_placement_memory)
    return out


def placement_of(key: str) -> Optional[str]:
    """The recorded routing key of one entry, or None."""
    hit = _placement_memory.get(key)
    if hit is not None:
        return hit
    if _dir is None:
        return None
    return placements().get(key)


def list_keys() -> "list[tuple[str, int]]":
    """All resident entry keys with their blob sizes, ``(key, bytes)``.

    Disk-backed caches scan the directory; the in-memory fallback lists
    its store.  Scan errors yield a partial (possibly empty) listing —
    migration treats an unlistable source as having nothing to offer.
    """
    _ensure_resolved()
    if _memory_only:
        return [(k, len(b)) for k, b in _memory.items()]
    if _dir is None:
        return []
    out = []
    try:
        for sub in os.scandir(_dir):
            if not sub.is_dir():
                continue
            for ent in os.scandir(sub.path):
                if ent.name.endswith(".pkl"):
                    try:
                        out.append((ent.name[: -len(".pkl")], ent.stat().st_size))
                    except OSError:
                        continue
    except OSError:
        pass
    return out


def read_entry(key: str) -> Optional[bytes]:
    """The raw pickled blob stored under *key*, or None.

    Unlike :func:`get` this neither unpickles nor refreshes access time:
    the bytes are destined for the wire, and a migration read must not
    perturb the source's LRU order.
    """
    _ensure_resolved()
    if _memory_only:
        return _memory.get(key)
    if _dir is None:
        return None
    blob = _read_blob(_path_for(key))
    return None if blob is _MISSING else blob


def write_entry(
    key: str, blob: bytes, placement: Optional[str] = None
) -> bool:
    """Install a raw blob under *key*; True when it was persisted.

    The blob must unpickle — a torn transfer that slipped past digest
    verification is rejected here rather than poisoning the store.
    A *placement* tag carried over from the source worker keeps the
    entry re-homeable across future resizes.
    """
    _ensure_resolved()
    try:
        pickle.loads(blob)
    except Exception:
        return False
    if _memory_only:
        _memory[key] = blob
        while len(_memory) > _MEMORY_CAP:
            _memory.pop(next(iter(_memory)))
        _record_placement(key, placement)
        perf.record("rcache.puts")
        return True
    if _dir is None:
        return False
    if not _write_blob(_path_for(key), blob):
        return False
    _record_placement(key, placement)
    perf.record("rcache.puts")
    _enforce_cap()
    return True


def _enforce_cap() -> None:
    """Evict least-recently-used entries until the directory fits the cap."""
    if _dir is None or _max_bytes <= 0:
        return
    entries = []
    total = 0
    try:
        for sub in os.scandir(_dir):
            if not sub.is_dir():
                continue
            for ent in os.scandir(sub.path):
                if not ent.name.endswith(".pkl"):
                    continue
                st = ent.stat()
                entries.append((st.st_mtime, st.st_size, ent.path))
                total += st.st_size
    except OSError:
        return
    if total <= _max_bytes:
        return
    entries.sort()  # oldest access first
    for _, size, path in entries:
        try:
            os.unlink(path)
        except OSError:
            continue
        perf.record("rcache.evictions")
        total -= size
        if total <= _max_bytes:
            break
