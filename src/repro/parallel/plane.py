"""Process-level execution plane for fan-out analyses.

The analyses the experiments run in bulk — per-task verdicts inside an
SP/EDF set, per-instance points of an acceptance or sensitivity sweep,
independent flows through component chains — are embarrassingly parallel
and operate on pickle-safe values (tasks, curves, result dataclasses).
This module owns the one process pool everything in :mod:`repro` fans
out through:

* **Worker count resolution** (:func:`resolve_jobs`): an explicit
  ``jobs=`` keyword beats the process default installed by
  :func:`set_default_jobs` (the CLI's ``--jobs``), which beats the
  ``REPRO_JOBS`` environment variable, which beats the serial default of
  1.  ``"auto"`` means one worker per CPU.  Inside a worker process the
  resolution is pinned to 1, so library code can pass ``jobs=None``
  everywhere without ever nesting pools.

* **Deterministic fan-out** (:func:`parallel_map`): results keep item
  order; when any job raises, the exception of the *earliest item in
  submission order* is re-raised in the parent — exactly the exception a
  sequential run would have surfaced first.  Combined with the engine's
  exact arithmetic this makes ``jobs=N`` runs bit-identical to
  ``jobs=1`` runs: same Fractions, same witnesses, same exceptions.

* **Configuration mirroring**: each job carries the parent's resolved
  kernel backend and persistent-cache configuration, applied in the
  worker before the job body runs — a long-lived pool never acts on
  stale settings.

* **Perf truthfulness**: workers snapshot their
  :class:`~repro.perf.PerfRegistry` per job; the parent merges every
  snapshot (:func:`repro.perf.merge`), so ``perf.report()`` accounts for
  work wherever it ran.

* **Cache isolation** (``fresh_caches=True``): process-local derived
  state — the curve interning table, the kernel operation memo, the
  in-memory result-cache fallback — is reset before each job, so
  sweep instances cannot leak exploration state into one another even
  when a worker process serves many instances.  The persistent on-disk
  result cache is *not* cleared: it is content-addressed and exact, so
  sharing it is sound by construction.

* **Watchdog**: with ``timeout=`` each item gets a wall-clock allowance
  in the pool; hung workers are killed (a stuck process never returns to
  ``shutdown``), crashed workers are detected through the broken pool,
  and the affected items are retried on a fresh pool with exponential
  backoff (``parallel.worker_retries``).  Items that keep failing are
  re-executed serially in the parent under a budget —
  the caller's ``budget=`` or, for timed maps, a deadline budget derived
  from ``timeout`` — so a cooperative job body degrades or raises a
  typed error instead of hanging the parent.  Because job-body
  exceptions travel as *values* (``("err", exc)``), any exception a
  future *raises* is infrastructure by construction; the two failure
  planes cannot be confused.

The pool is created lazily, kept for the life of the process (pool
startup would otherwise dominate small fan-outs) and torn down atexit.
Environments that cannot fork (restricted sandboxes) degrade to the
serial path transparently — with a :class:`RuntimeWarning` and a
``parallel.pool_degraded`` perf counter, so a silent loss of parallelism
cannot masquerade as a slow machine.
"""

from __future__ import annotations

import atexit
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import perf
from repro.errors import BudgetExhaustedError, WorkerError
from repro.minplus import backend as backend_mod
from repro.minplus import costmodel
from repro.parallel import cache as result_cache
from repro.resilience import chaos
from repro.resilience.budget import Budget, budget_scope

__all__ = [
    "resolve_jobs",
    "set_default_jobs",
    "parallel_map",
    "map_settled",
    "reset_process_caches",
]

#: Pool attempts per item before the serial in-parent fallback.
MAX_ATTEMPTS = 3

#: Base of the exponential backoff between retry rounds (seconds).
BACKOFF_BASE = 0.05

#: Allowance for draining the remaining futures of a round once one
#: item timed out (the pool is wedged and about to be killed anyway).
POISONED_GRACE = 0.1

JobsLike = Union[None, int, str]

#: True in pool worker processes (set by the pool initializer); forces
#: every nested resolve_jobs() to 1 so pools never nest.
_in_worker = False

#: Process default installed by set_default_jobs() (the CLI's --jobs).
_default_jobs: Optional[int] = None

#: Lazily created executors, one per worker count.
_pools: Dict[int, ProcessPoolExecutor] = {}


def _parse_jobs(value: Union[int, str]) -> int:
    """Normalize a jobs specification to a concrete worker count."""
    if isinstance(value, str):
        if value.strip().lower() == "auto":
            return os.cpu_count() or 1
        try:
            value = int(value)
        except ValueError:
            raise ValueError(
                f"invalid jobs value {value!r}; expected a positive "
                "integer or 'auto'"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"invalid jobs value {value!r}")
    if value < 1:
        raise ValueError(f"jobs must be >= 1, got {value}")
    return value


def set_default_jobs(jobs: JobsLike) -> None:
    """Install a process-wide default worker count (``None`` clears it)."""
    global _default_jobs
    _default_jobs = None if jobs is None else _parse_jobs(jobs)


def resolve_jobs(jobs: JobsLike = None, n_items: Optional[int] = None) -> int:
    """The effective worker count for one fan-out.

    Resolution order: explicit *jobs* argument, :func:`set_default_jobs`
    default, ``REPRO_JOBS`` environment variable, serial (1).  The
    result is capped by *n_items* when given (no idle workers) and is
    always 1 inside a pool worker.
    """
    if _in_worker:
        return 1
    if jobs is not None:
        n = _parse_jobs(jobs)
    elif _default_jobs is not None:
        n = _default_jobs
    else:
        env = os.environ.get("REPRO_JOBS")
        n = _parse_jobs(env) if env else 1
    if n_items is not None:
        n = max(1, min(n, n_items))
    return n


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _mark_worker() -> None:
    """Pool initializer: pin nested fan-outs in this process to serial."""
    global _in_worker
    _in_worker = True


def reset_process_caches() -> None:
    """Clear process-local derived-state caches (job isolation).

    Drops the curve interning table, the kernel operation memo and the
    in-memory result-cache fallback.  Analyses afterwards behave exactly
    as in a fresh process: same results (the caches are semantically
    transparent), cold costs.
    """
    from repro.minplus import curve as curve_mod
    from repro.minplus import kernels

    curve_mod.clear_intern_table()
    kernels.op_cache_clear()
    result_cache.clear_memory()


class _Unpicklable:
    """Chaos payload: a result the worker cannot pickle back."""

    def __reduce__(self):
        raise RuntimeError("chaos: injected unpicklable job result")


def _run_job(payload):
    """Execute one job in a worker: apply config, run, snapshot perf.

    Returns ``(status, result_or_exception, perf_snapshot)`` so the
    parent can merge instrumentation and re-raise deterministically.
    Exceptions raised by the job body are *returned*, never raised —
    anything this future raises in the parent is infrastructure
    (crashed worker, hung worker, unpicklable result).
    """
    (
        fn,
        item,
        backend,
        cache_config,
        fresh,
        chaos_config,
        chaos_key,
        cost_table,
    ) = payload
    backend_mod.set_backend(backend)
    result_cache.apply_config(cache_config)
    chaos.apply_config(chaos_config)
    # Workers never read the calibration file themselves — they inherit
    # the parent's dispatch table, so parent and worker take identical
    # exact/hybrid decisions for every op.
    costmodel.apply_table(cost_table)
    # Injected worker faults, keyed by (item index, attempt) so a retry
    # draws a fresh decision — injected faults are transient, like the
    # real ones they model.
    if chaos.should_fire("worker.crash", key=chaos_key):
        os._exit(17)
    if chaos.should_fire("worker.hang", key=chaos_key):
        time.sleep(chaos.HANG_SECONDS)
    if fresh:
        reset_process_caches()
    perf.reset()
    try:
        result = fn(item)
    except Exception as exc:
        return ("err", exc, perf.snapshot())
    if chaos.should_fire("worker.pickle", key=chaos_key):
        return ("ok", _Unpicklable(), perf.snapshot())
    return ("ok", result, perf.snapshot())


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _serial_map(fn: Callable, items: Sequence, fresh_caches: bool) -> List:
    out = []
    for item in items:
        if fresh_caches:
            reset_process_caches()
        out.append(fn(item))
    return out


def _get_pool(n: int) -> ProcessPoolExecutor:
    pool = _pools.get(n)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=n, initializer=_mark_worker)
        _pools[n] = pool
    return pool


def _drop_pool(n: int) -> None:
    pool = _pools.pop(n, None)
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def _kill_pool(n: int) -> None:
    """Forcefully tear down a pool that may hold hung workers.

    ``shutdown`` alone never returns a stuck worker process, so the
    watchdog terminates the processes first and only then shuts the
    executor machinery down.
    """
    pool = _pools.pop(n, None)
    if pool is None:
        return
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


@atexit.register
def _shutdown_pools() -> None:
    for n in list(_pools):
        _drop_pool(n)


def _degrade_to_serial(fn, items, fresh_caches, cause: Exception) -> List:
    """Pool-level serial fallback: loud, counted, then transparent.

    The warning names the originating exception (type and message) and
    carries it as the warning's ``__cause__``, so an operator can tell a
    genuinely restricted sandbox (``PermissionError`` from fork) from a
    misconfigured or crashed pool (``BrokenProcessPool``) straight from
    the log line — or programmatically from
    ``warning.message.__cause__``.
    """
    perf.record("parallel.pool_degraded")
    warning = RuntimeWarning(
        f"process pool unavailable ({type(cause).__name__}: {cause}); "
        "falling back to serial execution — parallel speedup is lost "
        "for this call"
    )
    warning.__cause__ = cause
    warnings.warn(warning, stacklevel=3)
    return _serial_map(fn, items, fresh_caches)


def parallel_map(
    fn: Callable,
    items: Sequence,
    jobs: JobsLike = None,
    fresh_caches: bool = False,
    timeout: Optional[float] = None,
    budget: Optional[Budget] = None,
) -> List:
    """``[fn(item) for item in items]`` across worker processes.

    Args:
        fn: A module-level (pickle-safe) function of one item.
        items: Pickle-safe work items; results keep their order.
        jobs: Worker count (see :func:`resolve_jobs`); 1 runs the plain
            serial loop in-process.
        fresh_caches: Reset process-local caches before every job —
            the per-instance isolation guarantee benchmark sweeps rely
            on (see :func:`reset_process_caches`).
        timeout: Per-item wall-clock allowance in seconds.  An item
            whose future does not complete in time has its pool killed
            (hung workers never exit on their own) and is retried —
            :data:`MAX_ATTEMPTS` pool attempts with exponential backoff,
            then one serial in-parent re-execution.
        budget: Budget for the serial re-execution of items whose pool
            attempts all failed (the watchdog's last resort).  Defaults
            to a deadline budget derived from *timeout*, so a
            cooperative job body is cut off by its checkpoints instead
            of hanging the parent.  The normal pool/serial paths are
            *not* metered by this — per-item budgets belong inside *fn*
            (see :func:`repro.resilience.bounded_delay_many`).

    Raises:
        The exception of the earliest failing item in submission order —
        the same exception a sequential run raises first.  Perf
        snapshots of *all* jobs (including failed ones) are merged into
        the parent registry before raising.  :class:`WorkerError` only
        when an item could not be completed by the pool *and* its serial
        re-execution was cut off by the watchdog deadline.
    """
    items = list(items)
    n = resolve_jobs(jobs, n_items=len(items))
    if n <= 1 or len(items) <= 1:
        return _serial_map(fn, items, fresh_caches)
    backend = backend_mod.get_backend()
    cache_config = result_cache.current_config()
    chaos_config = chaos.current_config()
    cost_table = costmodel.current_table()

    def payload(i: int, attempt: int):
        return (
            fn,
            items[i],
            backend,
            cache_config,
            fresh_caches,
            chaos_config,
            (i, attempt),
            cost_table,
        )

    outcomes: List = [None] * len(items)
    pending = list(range(len(items)))
    for attempt in range(MAX_ATTEMPTS):
        if attempt:
            perf.record("parallel.worker_retries", len(pending))
            time.sleep(BACKOFF_BASE * (2 ** (attempt - 1)))
        try:
            pool = _get_pool(n)
            futures = {
                i: pool.submit(_run_job, payload(i, attempt))
                for i in pending
            }
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            # Pool could not start (restricted sandbox, fork failure):
            # nothing to retry against — degrade the whole call.
            _drop_pool(n)
            return _degrade_to_serial(fn, items, fresh_caches, exc)
        failed: List[int] = []
        poisoned = False
        for i in pending:
            # Once one item has timed out the pool is presumed wedged
            # and will be killed after this round: draining the rest
            # with the full per-item allowance each would serialize to
            # O(n * timeout).  They get a short grace (enough to
            # collect already-finished results) and a fresh allowance
            # on retry.
            allowance = timeout
            if poisoned and timeout is not None:
                allowance = min(timeout, POISONED_GRACE)
            try:
                status, out, snap = futures[i].result(timeout=allowance)
            except (_FuturesTimeout, TimeoutError):
                perf.record("parallel.item_timeouts")
                failed.append(i)
                poisoned = True  # a hung worker still occupies the pool
            except BrokenProcessPool:
                failed.append(i)
                poisoned = True
            except Exception:
                # The job body cannot raise here (its exceptions travel
                # as values): this is a result that failed to unpickle.
                failed.append(i)
            else:
                perf.merge(snap)
                outcomes[i] = (status, out)
        if poisoned:
            _kill_pool(n)
        pending = failed
        if not pending:
            break
    if pending:
        # Last resort: serial in-parent re-execution under a budget, so
        # even a persistently hanging cooperative body terminates.
        effective = budget
        if effective is None and timeout is not None:
            effective = Budget(deadline=timeout)
        for i in pending:
            if fresh_caches:
                reset_process_caches()
            try:
                with budget_scope(effective):
                    outcomes[i] = ("ok", fn(items[i]))
            except BudgetExhaustedError as exc:
                if budget is None:
                    raise WorkerError(
                        f"item {i} failed {MAX_ATTEMPTS} pool attempts "
                        f"and exceeded the {timeout}s watchdog deadline "
                        "when re-executed serially"
                    ) from exc
                outcomes[i] = ("err", exc)
            except Exception as exc:
                outcomes[i] = ("err", exc)
    perf.record("plane.jobs", len(outcomes))
    for status, out in outcomes:
        if status == "err":
            raise out
    return [out for _, out in outcomes]


# ----------------------------------------------------------------------
# Settled fan-out (batch servers)
# ----------------------------------------------------------------------


def _settled_job(pair):
    """Run one wrapped job, returning its outcome as a value.

    Module-level so the pair ``(fn, item)`` ships to pool workers like
    any other payload; *fn* itself must still be pickle-safe.
    """
    fn, item = pair
    try:
        return ("ok", fn(item))
    except Exception as exc:  # noqa: BLE001 - outcomes travel as values
        return ("err", exc)


def map_settled(
    fn: Callable,
    items: Sequence,
    jobs: JobsLike = None,
    fresh_caches: bool = False,
    timeout: Optional[float] = None,
    budget: Optional[Budget] = None,
) -> List:
    """:func:`parallel_map` that settles every item instead of raising.

    Returns one ``("ok", result)`` or ``("err", exception)`` pair per
    item, in item order.  This is the batch-server entry point: one
    malformed or unbounded request must fail *alone*, not poison the
    whole micro-batch it was coalesced into — whereas
    :func:`parallel_map` deliberately reproduces serial semantics by
    re-raising the earliest failure.

    Infrastructure failures keep their :func:`parallel_map` semantics:
    a pool that cannot complete an item even after retries and the
    serial fallback still raises :class:`~repro.errors.WorkerError` —
    an operator problem, not a per-request one.
    """
    pairs = [(fn, item) for item in items]
    return parallel_map(
        _settled_job,
        pairs,
        jobs=jobs,
        fresh_caches=fresh_caches,
        timeout=timeout,
        budget=budget,
    )
