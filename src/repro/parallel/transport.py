"""Worker-to-worker cache transport: pull, verify, install.

A planned cluster resize (:mod:`repro.cluster.coordinator` admin
endpoints) re-homes the result-cache entries whose ring owner changes,
so the fleet's warm hit rate survives membership churn instead of
cold-starting.  The transfer protocol is deliberately minimal and
*pull-based*: the **destination** worker asks the source for each blob
it is about to own, verifies a SHA-256 over the raw bytes against the
digest the source advertised, and only then installs it through
:func:`repro.parallel.cache.write_entry` (which additionally insists
the blob unpickles).  The coordinator never holds entry bytes; it only
orchestrates who pulls what from whom.

Failure surface (all typed, never silent):

* A torn transfer — including the injected
  ``cluster.migration_torn_write`` chaos site — fails digest
  verification and is retried with a fresh attempt key; persistent
  mismatches are *skipped* and counted, never installed.
* An unreachable peer aborts the pull with the keys it did manage,
  so the coordinator can account for partial migration (the entries
  left behind simply miss once and recompute — the cache is an
  accelerator, never a correctness dependency).

Transfers are rate-limited by a token-bucket sleep on received bytes
(``rate_bytes_per_s``) so a resize cannot starve live analysis traffic
of disk/network bandwidth.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel import cache
from repro.resilience import chaos

__all__ = [
    "list_peer_keys",
    "fetch_entry",
    "pull_entries",
    "TransportError",
]

#: Attempts per entry before the pull gives up and skips it.
FETCH_ATTEMPTS = 3
#: Socket timeout for one peer exchange (seconds).
DEFAULT_TIMEOUT_S = 30.0


class TransportError(Exception):
    """A peer exchange failed (connection, protocol, or HTTP error)."""


def _exchange(
    host: str, port: int, method: str, path: str, timeout: float
) -> Tuple[int, Dict[str, str], bytes]:
    """One ``Connection: close`` HTTP exchange with a peer worker."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, path, headers={"Connection": "close"})
        resp = conn.getresponse()
        body = resp.read()
        headers = {k.lower(): v for k, v in resp.getheaders()}
        return resp.status, headers, body
    except (OSError, http.client.HTTPException) as exc:
        raise TransportError(f"peer {host}:{port}{path}: {exc}") from exc
    finally:
        conn.close()


def list_peer_keys(
    host: str, port: int, timeout: float = DEFAULT_TIMEOUT_S
) -> List[Tuple[str, int, Optional[str]]]:
    """The peer's resident cache keys, ``(key, bytes, placement)``.

    *placement* is the routing key the entry was written under (see
    :func:`repro.parallel.cache.placement_scope`), or None for entries
    written outside any request scope.
    """
    status, _headers, body = _exchange(
        host, port, "GET", "/v1/cache/keys", timeout
    )
    if status != 200:
        raise TransportError(
            f"peer {host}:{port}/v1/cache/keys returned HTTP {status}"
        )
    try:
        doc = json.loads(body)
        out: List[Tuple[str, int, Optional[str]]] = []
        for row in doc["keys"]:
            key, size = str(row[0]), int(row[1])
            placement = (
                str(row[2]) if len(row) > 2 and row[2] is not None else None
            )
            out.append((key, size, placement))
        return out
    except (ValueError, KeyError, TypeError, IndexError) as exc:
        raise TransportError(
            f"peer {host}:{port} sent a malformed key listing: {exc}"
        ) from exc


def fetch_entry(
    host: str,
    port: int,
    key: str,
    timeout: float = DEFAULT_TIMEOUT_S,
    attempt: int = 0,
) -> Optional[Tuple[bytes, Optional[str]]]:
    """One digest-verified blob fetch; None when the peer lacks the key.

    Returns the raw blob plus the placement tag the source advertised
    (``X-Repro-Placement``), so the installed copy stays re-homeable.

    Raises:
        TransportError: on connection failures or digest mismatch (the
            caller retries with a fresh *attempt*, which re-draws any
            injected torn write).
    """
    status, headers, body = _exchange(
        host, port, "GET", f"/v1/cache/entry/{key}", timeout
    )
    if status == 404:
        return None
    if status != 200:
        raise TransportError(
            f"peer {host}:{port} entry {key[:12]}…: HTTP {status}"
        )
    if chaos.should_fire("cluster.migration_torn_write", (key, attempt)):
        body = body[: len(body) // 2]
    want = headers.get("x-repro-blob-sha256")
    if not want or cache.blob_digest(body) != want:
        raise TransportError(
            f"peer {host}:{port} entry {key[:12]}…: digest mismatch "
            "(torn transfer)"
        )
    return body, headers.get("x-repro-placement")


def pull_entries(
    host: str,
    port: int,
    keys: Sequence[str],
    rate_bytes_per_s: Optional[float] = None,
    timeout: float = DEFAULT_TIMEOUT_S,
) -> Dict[str, object]:
    """Pull *keys* from a peer, verify, install; return an accounting.

    Every entry is fetched with up to :data:`FETCH_ATTEMPTS` attempts
    (digest mismatches re-draw), verified, and installed locally.  The
    returned summary is the coordinator's migration record::

        {"pulled": 7, "missing": 0, "failed": 1, "bytes": 31337,
         "torn_retries": 2, "errors": ["…"]}

    ``failed`` counts entries that never verified or installed; they are
    left behind on the source and will simply miss once.  An unreachable
    peer stops the pull early — the summary still reflects what landed.
    """
    pulled = missing = failed = torn = 0
    total_bytes = 0
    errors: List[str] = []
    window_start = time.monotonic()
    window_bytes = 0
    for index, key in enumerate(keys):
        blob: Optional[bytes] = None
        placement: Optional[str] = None
        fetched = False
        last_error: Optional[str] = None
        for attempt in range(FETCH_ATTEMPTS):
            try:
                got = fetch_entry(host, port, key, timeout, attempt)
                if got is not None:
                    blob, placement = got
                fetched = True
                break
            except TransportError as exc:
                last_error = str(exc)
                if "digest mismatch" in last_error:
                    torn += 1
                    continue
                # Connection-level failure: the peer is gone; stop.
                errors.append(last_error)
                return {
                    "pulled": pulled,
                    "missing": missing,
                    "failed": failed + (len(keys) - index),
                    "bytes": total_bytes,
                    "torn_retries": torn,
                    "errors": errors[:8],
                }
        if blob is None and fetched:
            missing += 1
            continue
        if blob is None or not cache.write_entry(key, blob, placement):
            failed += 1
            if last_error:
                errors.append(last_error)
            continue
        pulled += 1
        total_bytes += len(blob)
        if rate_bytes_per_s and rate_bytes_per_s > 0:
            window_bytes += len(blob)
            owed = window_bytes / rate_bytes_per_s
            elapsed = time.monotonic() - window_start
            if owed > elapsed:
                time.sleep(min(owed - elapsed, 5.0))
    return {
        "pulled": pulled,
        "missing": missing,
        "failed": failed,
        "bytes": total_bytes,
        "torn_retries": torn,
        "errors": errors[:8],
    }
