"""Parallel analysis engine: process fan-out + persistent result cache.

Two cooperating planes accelerate bulk analyses without changing any
result bit:

* the **execution plane** (:mod:`repro.parallel.plane`) fans
  embarrassingly parallel analysis jobs out over a process pool with
  deterministic ordering and serial-identical exception semantics, and
* the **persistent result cache** (:mod:`repro.parallel.cache`) stores
  whole-analysis results on disk, content-addressed by the exact inputs,
  so warm re-runs and sibling workers skip recomputation entirely.

Entry points throughout the library accept ``jobs=`` (also the
``REPRO_JOBS`` environment variable and the CLI's ``--jobs``); the cache
activates via ``REPRO_CACHE_DIR``, :func:`configure_cache`, or the CLI's
``--cache-dir``.
"""

from repro.parallel import cache
from repro.parallel.cache import configure as configure_cache
from repro.parallel.plane import (
    map_settled,
    parallel_map,
    reset_process_caches,
    resolve_jobs,
    set_default_jobs,
)

__all__ = [
    "cache",
    "configure_cache",
    "map_settled",
    "parallel_map",
    "reset_process_caches",
    "resolve_jobs",
    "set_default_jobs",
]
