"""Static-priority schedulability with per-job-type structural delays.

The structural delay analysis yields a delay bound *per graph vertex* —
strictly finer than any curve abstraction, which can only bound all jobs
of a task at once.  A task is schedulable iff every job type's delay
bound is within its own relative deadline; structure pays twice: less
interference pessimism *and* per-type verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro._numeric import Q, NumLike, as_q
from repro.core.multi import leftover_service
from repro.core.delay import structural_delays_per_job
from repro.drt.model import DRTTask
from repro.drt.request import rbf_curve
from repro.errors import UnboundedBusyWindowError
from repro.minplus.curve import Curve
from repro.parallel import cache as result_cache
from repro.parallel.plane import JobsLike, parallel_map
from repro.resilience.budget import checkpoint

__all__ = ["SpResult", "sp_schedulable"]


@dataclass(frozen=True)
class SpResult:
    """Outcome of the static-priority test.

    Attributes:
        schedulable: Verdict for the whole set.
        job_delays: ``{task: {job: delay bound}}`` for every analysed
            task (tasks after the first failure are still analysed when
            possible).
        failures: ``(task, job, delay, deadline)`` tuples for violations.
        saturated: Tasks whose leftover service was exhausted
            (unbounded delay, reported separately from deadline misses).
    """

    schedulable: bool
    job_delays: Dict[str, Dict[str, Fraction]]
    failures: List[Tuple[str, str, Fraction, Fraction]]
    saturated: List[str]


def sp_schedulable(
    tasks: Sequence[DRTTask],
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    max_iterations: int = 40,
    jobs: JobsLike = None,
) -> SpResult:
    """Static-priority test: per-job structural delays vs. deadlines.

    Args:
        tasks: Highest priority first; each sees the leftover service of
            *beta* after all earlier tasks' request bounds.
        beta: Lower service curve of the shared resource.
        initial_horizon: Optional starting horizon for the fixpoints.
        max_iterations: Cap on horizon doublings per task.
        jobs: Fan the per-task analyses out over worker processes (each
            task's analysis depends only on the fixed higher-priority
            prefix, never on lower-priority results, so the cases are
            independent).  Defaults to ``REPRO_JOBS``/serial; results
            are bit-identical to ``jobs=1``.
    """
    tasks = list(tasks)
    extra = (
        "ih=" + (str(as_q(initial_horizon)) if initial_horizon is not None else "-"),
        f"mi={max_iterations}",
    )
    cached = result_cache.get_analysis("sched.sp", tasks, beta, extra)
    if cached is not None:
        return cached
    cases = [
        (task, tuple(tasks[:i]), beta, initial_horizon, max_iterations)
        for i, task in enumerate(tasks)
    ]
    per_task = parallel_map(_sp_case, cases, jobs=jobs)
    job_delays: Dict[str, Dict[str, Fraction]] = {}
    failures: List[Tuple[str, str, Fraction, Fraction]] = []
    saturated: List[str] = []
    for task, delays in zip(tasks, per_task):
        if delays is None:
            saturated.append(task.name)
            continue
        job_delays[task.name] = delays
        for job, delay in delays.items():
            deadline = task.deadline(job)
            if delay > deadline:
                failures.append((task.name, job, delay, deadline))
    result = SpResult(
        schedulable=not failures and not saturated,
        job_delays=job_delays,
        failures=failures,
        saturated=saturated,
    )
    result_cache.put_analysis("sched.sp", tasks, beta, result, extra)
    return result


def _sp_case(case) -> Optional[Dict[str, Fraction]]:
    """One task's per-job delays under its higher-priority prefix
    (module-level so the execution plane can ship it to workers)."""
    task, interferers, beta, initial_horizon, max_iterations = case
    return _per_job_with_interference(
        task, interferers, beta, initial_horizon, max_iterations
    )


def _per_job_with_interference(
    task: DRTTask,
    interferers: Sequence[DRTTask],
    beta: Curve,
    initial_horizon: Optional[NumLike],
    max_iterations: int,
) -> Optional[Dict[str, Fraction]]:
    horizon = as_q(initial_horizon) if initial_horizon is not None else Q(64)
    previous: Optional[Dict[str, Fraction]] = None
    for _ in range(max_iterations):
        checkpoint()  # one budget unit per interference-horizon round
        beta_left = beta
        for other in interferers:
            beta_left = leftover_service(beta_left, rbf_curve(other, horizon))
        if beta_left.tail_rate <= 0 and interferers:
            # Request-bound tails carry the exact long-run rates, so an
            # exhausted leftover rate is permanent: truly saturated.
            return None
        try:
            delays = structural_delays_per_job(
                task, beta_left, initial_horizon=horizon
            )
        except UnboundedBusyWindowError:
            return None  # victim rate >= leftover rate: permanent
        if delays == previous:
            # Doubling the interference exactness horizon changed nothing:
            # the bounds have converged.
            return delays
        previous = delays
        horizon *= 2
    return previous
