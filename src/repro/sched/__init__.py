"""Schedulability tests built on the delay and demand machinery."""

from repro.sched.edf import EdfResult, edf_schedulable
from repro.sched.edf_delay import EdfDelayResult, edf_structural_delays
from repro.sched.sp import SpResult, sp_schedulable
from repro.sched.acceptance import acceptance_ratio

__all__ = [
    "EdfResult",
    "edf_schedulable",
    "EdfDelayResult",
    "edf_structural_delays",
    "SpResult",
    "sp_schedulable",
    "acceptance_ratio",
]
