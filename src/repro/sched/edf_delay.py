"""Per-job delay bounds for structural task sets under preemptive EDF.

The classical demand test (:mod:`repro.sched.edf`) answers a binary
question; this analysis bounds the *delay* of each job type, Spuri-style,
combining the structural frontier with demand curves:

Consider a job of type ``v`` (relative deadline ``d(v)``) of task ``i``,
released at offset ``t`` after the start of its busy window with
path-accumulated work ``w`` (its own WCET included).  Under preemptive
EDF on a strict-``beta`` server, the work that must complete before it
is at most

* ``w`` — its own task's earlier path work (for *constrained-deadline*
  tasks, later jobs of the same behaviour have strictly later absolute
  deadlines, so they never preempt it), plus
* ``sum_{j != i} dbf_j(t + d(v))`` — jobs of other tasks released inside
  the busy window whose absolute deadlines do not exceed the job's.

The busy window may *start with another task's job*: the analysed
task's path begins at an unknown anchor offset ``a >= 0``, placing the
job at ``s = a + t`` with interference window ``s + d(v)``.  Hence

    delay(v) <= max over frontier tuples (t, w) ending at v, t <= L,
                max over anchors a in [0, L - t], of
                beta^{-1}( w + sum_j dbf_j(a + t + d(v)) ) - t - a

where ``L`` is the *aggregate* busy-window bound (all tasks together).
Between jumps of the aggregate demand the inner expression strictly
decreases in ``a``, so only the pull-backs of the dbf jump points need
checking.  The bound is sound (sufficient); the binary dbf test remains
the exact schedulability criterion for constrained deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro._numeric import Q, NumLike, as_q, is_inf
from repro.core.busy_window import last_positive_time
from repro.drt.demand import dbf_curve
from repro.drt.model import DRTTask
from repro.drt.request import RequestTuple, rbf_curve, request_frontier
from repro.drt.validate import validate_task
from repro.errors import AnalysisError, UnboundedBusyWindowError
from repro.minplus import backend as backend_mod
from repro.minplus import kernels
from repro.minplus.curve import Curve
from repro.minplus.deviation import lower_pseudo_inverse_batch
from repro.parallel import cache as result_cache
from repro.parallel.plane import JobsLike, parallel_map
from repro.resilience.budget import checkpoint

__all__ = ["EdfDelayResult", "edf_structural_delays"]


@dataclass(frozen=True)
class EdfDelayResult:
    """Per-job EDF delay bounds for one task set.

    Attributes:
        job_delays: ``{task: {job: delay bound}}``.
        busy_window: Aggregate busy-window bound used for truncation.
        schedulable: True iff every job type's bound is within its own
            relative deadline (sufficient condition).
    """

    job_delays: Dict[str, Dict[str, Fraction]]
    busy_window: Fraction
    schedulable: bool


def edf_structural_delays(
    tasks: Sequence[DRTTask],
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    max_iterations: int = 40,
    reuse: bool = True,
    backend: Optional[str] = None,
    jobs: JobsLike = None,
) -> EdfDelayResult:
    """Per-job-type delay bounds under preemptive EDF.

    Args:
        tasks: The structural workloads (constrained deadlines required —
            the own-task non-preemption argument needs them).
        beta: Strict lower service curve of the shared resource.
        initial_horizon: Optional starting exactness horizon.
        max_iterations: Cap on horizon doublings for the aggregate
            busy-window fixpoint.
        reuse: Serve each task's frontier from its shared resumable
            explorer (default).  ``False`` re-explores every task from
            scratch — the historical cost model the benchmarks compare
            against.
        backend: Kernel backend override (see :mod:`repro.minplus.backend`);
            ``"hybrid"`` screens the per-vertex delay maximisation and
            returns identical bounds.
        jobs: Fan the per-task maximisations out over worker processes.
            After the shared aggregate busy window and demand curves are
            fixed, each task's bound depends on nothing computed for the
            other tasks, so the cases are independent; bounds are
            bit-identical to ``jobs=1``.

    Raises:
        ValidationError: if a task does not have constrained deadlines.
        UnboundedBusyWindowError: if the aggregate workload saturates the
            service.
    """
    if not tasks:
        raise AnalysisError("edf_structural_delays needs at least one task")
    tasks = list(tasks)
    for task in tasks:
        validate_task(task, require_constrained=True)
    extra = (
        "ih=" + (str(as_q(initial_horizon)) if initial_horizon is not None else "-"),
        f"mi={max_iterations}",
        f"reuse={reuse}",
        f"be={backend_mod.resolve_backend(backend)}",
    )
    cached = result_cache.get_analysis("sched.edf", tasks, beta, extra)
    if cached is not None:
        return cached
    horizon = as_q(initial_horizon) if initial_horizon is not None else Q(64)
    busy = None
    for _ in range(max_iterations):
        checkpoint()  # one budget unit per aggregate-horizon round
        total_rbf = rbf_curve(tasks[0], horizon, reuse=reuse)
        for task in tasks[1:]:
            total_rbf = total_rbf + rbf_curve(task, horizon, reuse=reuse)
        try:
            last = last_positive_time(total_rbf - beta)
        except UnboundedBusyWindowError:
            raise UnboundedBusyWindowError(
                f"aggregate rate {total_rbf.tail_rate} saturates the "
                f"service rate {beta.tail_rate}"
            ) from None
        if last is None:
            busy = Q(0)
            break
        if last < horizon:
            busy = last
            break
        horizon *= 2
    if busy is None:
        raise UnboundedBusyWindowError(
            f"aggregate busy window did not close within {max_iterations} "
            "horizon doublings"
        )
    # Demand curves of every task at a horizon covering every window the
    # maximisation can query: t + d(v) <= busy + max deadline.
    max_deadline = max(
        job.deadline for task in tasks for job in task.jobs.values()
    )
    dbf_horizon = busy + max_deadline + 1
    dbfs = {task.name: dbf_curve(task, dbf_horizon) for task in tasks}
    cases = [
        (
            task,
            [dbfs[other.name] for other in tasks if other.name != task.name],
            beta,
            busy,
            reuse,
            backend,
        )
        for task in tasks
    ]
    per_task = parallel_map(_edf_task_case, cases, jobs=jobs)
    job_delays: Dict[str, Dict[str, Fraction]] = {}
    schedulable = True
    for task, delays in zip(tasks, per_task):
        job_delays[task.name] = delays
        for v, d in delays.items():
            if d > task.deadline(v):
                schedulable = False
    result = EdfDelayResult(
        job_delays=job_delays, busy_window=busy, schedulable=schedulable
    )
    result_cache.put_analysis("sched.edf", tasks, beta, result, extra)
    return result


def _edf_task_case(case) -> Dict[str, Fraction]:
    """One task's per-job EDF delay maximisation, given the shared
    aggregate busy window and the other tasks' demand curves
    (module-level so the execution plane can ship it to workers)."""
    task, other_dbfs, beta, busy, reuse, backend = case
    # Aggregate interference demand of the other tasks, and the jump
    # points where increasing the anchor offset can pay off.
    interference_jumps: List[Q] = sorted(
        {bp for dbf in other_dbfs for bp in dbf.breakpoints()}
    )

    def interference_at(window: Q) -> Q:
        return sum((dbf.at(window) for dbf in other_dbfs), Q(0))

    delays: Dict[str, Fraction] = {v: Q(0) for v in task.job_names}
    tuples = request_frontier(task, busy, reuse=reuse)
    # The busy window may start with *another task's* job: the
    # analysed task's path begins at an unknown anchor offset
    # a >= 0 and the job sits at s = a + t.  Its interference
    # window is s + d(v); maximise the delay over the anchor.
    # Between jumps of the aggregate dbf the expression strictly
    # decreases in a, so only a = 0 and the pull-backs of the
    # dbf jump points need to be checked.  All (tuple, anchor)
    # demands go through one batched pseudo-inverse sweep.
    # Amortised charge for the (tuple x jump) anchor enumeration below.
    checkpoint(
        1 + (len(tuples) * max(len(interference_jumps), 1)) // 64
    )
    queries: List[Tuple[RequestTuple, Q, Q]] = []
    for tup in tuples:
        deadline = task.deadline(tup.vertex)
        anchors = [Q(0)]
        base = tup.time + deadline
        a_max = busy - tup.time
        for bp in interference_jumps:
            a = bp - base
            if 0 < a <= a_max:
                anchors.append(a)
        for a in anchors:
            queries.append((tup, a, tup.work + interference_at(base + a)))
    screened = None
    if backend_mod.op_backend("pinv", len(beta.segments), backend) == "hybrid":
        names = list(task.job_names)
        group_of = {v: i for i, v in enumerate(names)}
        screened = kernels.screened_pinv_delay_groups(
            beta,
            [tup.time + a for tup, a, _ in queries],
            [demand for _, _, demand in queries],
            [group_of[tup.vertex] for tup, _, _ in queries],
            len(names),
        )
    if screened is not None:
        inf_idx, results = screened
        if inf_idx is not None:
            raise UnboundedBusyWindowError(
                f"service never provides {queries[inf_idx][2]} units"
            )
        for v, (best, _) in zip(names, results):
            delays[v] = best
    else:
        invs = lower_pseudo_inverse_batch(beta, [q[2] for q in queries])
        for (tup, a, demand), inv in zip(queries, invs):
            if is_inf(inv):
                raise UnboundedBusyWindowError(
                    f"service never provides {demand} units"
                )
            d = inv - tup.time - a
            if d > delays[tup.vertex]:
                delays[tup.vertex] = d
    return delays
