"""Acceptance-ratio experiments: the standard schedulability-paper plot.

For each utilization level, generate many random task sets and report the
fraction each test accepts.  The precision ordering of the analyses shows
up directly: finer analyses accept more sets at high utilization.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Sequence

from repro._numeric import Q, NumLike, as_q
from repro.drt.model import DRTTask
from repro.minplus.curve import Curve
from repro.parallel.plane import JobsLike, parallel_map
from repro.workloads.random_drt import RandomDrtConfig, random_task_set

__all__ = ["acceptance_ratio"]


def acceptance_ratio(
    tests: Dict[str, Callable[[List[DRTTask], Curve], bool]],
    beta: Curve,
    utilizations: Sequence[NumLike],
    n_sets: int,
    n_tasks: int,
    config: RandomDrtConfig,
    seed: int = 0,
    jobs: JobsLike = None,
) -> Dict[str, List[float]]:
    """Acceptance ratio of each test across a utilization sweep.

    Args:
        tests: ``{label: test(tasks, beta) -> accepted}``; tests that
            raise are counted as rejections.
        beta: Lower service curve of the shared resource.
        utilizations: Total-utilization levels to sweep.
        n_sets: Random task sets per level.
        n_tasks: Tasks per set.
        config: Random task parameters (its ``target_utilization`` is
            overridden per set by the sweep).
        seed: Base RNG seed — each (level, set) pair gets a derived seed
            so the same sets are fed to every test.
        jobs: Fan the (level, set) cells out over worker processes.  The
            derived seeds make every cell self-contained, so ratios are
            bit-identical to a serial sweep.  Tests that cannot be
            pickled (lambdas, closures) silently fall back to the serial
            path — the experiment still runs, just in-process.

    Returns:
        ``{label: [ratio per utilization level]}``.
    """
    utilizations = list(utilizations)
    cells = [
        (tests, beta, u_idx, as_q(u), s_idx, seed, n_tasks, config)
        for u_idx, u in enumerate(utilizations)
        for s_idx in range(n_sets)
    ]
    try:
        pickle.dumps((tests, config), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        jobs = 1  # unpicklable tests: keep the sweep in-process
    verdicts = parallel_map(_acceptance_cell, cells, jobs=jobs)
    out: Dict[str, List[float]] = {label: [] for label in tests}
    per_level: Dict[int, Dict[str, int]] = {}
    for (_, _, u_idx, _, _, _, _, _), cell in zip(cells, verdicts):
        acc = per_level.setdefault(u_idx, {label: 0 for label in tests})
        for label, ok in cell.items():
            if ok:
                acc[label] += 1
    for u_idx in range(len(utilizations)):
        for label in tests:
            out[label].append(per_level[u_idx][label] / n_sets)
    return out


def _acceptance_cell(cell) -> Dict[str, bool]:
    """One random task set, every test's verdict (module-level so the
    execution plane can ship it to workers)."""
    tests, beta, u_idx, u, s_idx, seed, n_tasks, config = cell
    rng = random.Random((seed, u_idx, s_idx).__hash__())
    tasks = random_task_set(rng, n_tasks, u, config)
    verdict: Dict[str, bool] = {}
    for label, test in tests.items():
        try:
            verdict[label] = bool(test(tasks, beta))
        except Exception:
            verdict[label] = False  # analysis failure counts as rejection
    return verdict
