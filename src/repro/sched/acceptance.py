"""Acceptance-ratio experiments: the standard schedulability-paper plot.

For each utilization level, generate many random task sets and report the
fraction each test accepts.  The precision ordering of the analyses shows
up directly: finer analyses accept more sets at high utilization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Sequence

from repro._numeric import Q, NumLike, as_q
from repro.drt.model import DRTTask
from repro.minplus.curve import Curve
from repro.workloads.random_drt import RandomDrtConfig, random_task_set

__all__ = ["acceptance_ratio"]


def acceptance_ratio(
    tests: Dict[str, Callable[[List[DRTTask], Curve], bool]],
    beta: Curve,
    utilizations: Sequence[NumLike],
    n_sets: int,
    n_tasks: int,
    config: RandomDrtConfig,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Acceptance ratio of each test across a utilization sweep.

    Args:
        tests: ``{label: test(tasks, beta) -> accepted}``; tests that
            raise are counted as rejections.
        beta: Lower service curve of the shared resource.
        utilizations: Total-utilization levels to sweep.
        n_sets: Random task sets per level.
        n_tasks: Tasks per set.
        config: Random task parameters (its ``target_utilization`` is
            overridden per set by the sweep).
        seed: Base RNG seed — each (level, set) pair gets a derived seed
            so the same sets are fed to every test.

    Returns:
        ``{label: [ratio per utilization level]}``.
    """
    out: Dict[str, List[float]] = {label: [] for label in tests}
    for u_idx, u in enumerate(utilizations):
        accepted = {label: 0 for label in tests}
        for s_idx in range(n_sets):
            rng = random.Random((seed, u_idx, s_idx).__hash__())
            tasks = random_task_set(rng, n_tasks, as_q(u), config)
            for label, test in tests.items():
                try:
                    if test(tasks, beta):
                        accepted[label] += 1
                except Exception:
                    pass  # analysis failure counts as rejection
        for label in tests:
            out[label].append(accepted[label] / n_sets)
    return out
