"""EDF schedulability of structural task sets via demand bound functions.

A set of structural tasks is EDF-schedulable on a resource with lower
service curve ``beta`` if the total demand never exceeds the guaranteed
service: ``sum_i dbf_i(Delta) <= beta(Delta)`` for every window
``Delta >= 0``.  The check is finitary: beyond the busy-window-style
bound where the affine demand tails drop below the service, the
inequality holds permanently.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence

from repro._numeric import Q, NumLike, as_q
from repro.core.busy_window import last_positive_time
from repro.drt.demand import dbf_curve
from repro.drt.model import DRTTask
from repro.errors import UnboundedBusyWindowError
from repro.minplus.curve import Curve

__all__ = ["EdfResult", "edf_schedulable"]


@dataclass(frozen=True)
class EdfResult:
    """Outcome of the EDF demand test.

    Attributes:
        schedulable: Verdict.
        violation_window: A window length where demand exceeds service
            (None when schedulable).
        horizon: Exactness horizon at which the test closed.
    """

    schedulable: bool
    violation_window: Optional[Fraction]
    horizon: Fraction


def edf_schedulable(
    tasks: Sequence[DRTTask],
    beta: Curve,
    initial_horizon: Optional[NumLike] = None,
    max_iterations: int = 40,
) -> EdfResult:
    """EDF demand-bound test for structural tasks on service *beta*.

    The demand curves are exact up to the iterated horizon; their affine
    tails carry the exact long-run rates, so the test closes whenever the
    total utilization is below the service rate.

    Args:
        tasks: The structural workloads (constrained deadlines give the
            exact test; otherwise it is sufficient, not necessary).
        beta: Lower service curve.
        initial_horizon: Optional starting horizon.
        max_iterations: Cap on horizon doublings.

    Raises:
        UnboundedBusyWindowError: if the demand tails never drop below
            the service (long-run overload: trivially unschedulable
            workloads report this instead of a violation window).
    """
    horizon = as_q(initial_horizon) if initial_horizon is not None else Q(64)
    for _ in range(max_iterations):
        total = dbf_curve(tasks[0], horizon)
        for task in tasks[1:]:
            total = total + dbf_curve(task, horizon)
        diff = total - beta
        try:
            last = last_positive_time(diff)
        except UnboundedBusyWindowError:
            # Demand tails carry the exact long-run rates; a positive tail
            # is genuine long-run overload, not a short horizon.
            raise UnboundedBusyWindowError(
                f"total demand rate {total.tail_rate} saturates the service "
                f"rate {beta.tail_rate}"
            ) from None
        if last is None:
            return EdfResult(True, None, horizon)
        if last < horizon:
            # A genuine violation exists iff the difference is positive
            # somewhere in the exact region; find a witness window.
            witness = _violation_witness(diff, last)
            if witness is None:
                return EdfResult(True, None, horizon)
            return EdfResult(False, witness, horizon)
        horizon *= 2
    raise UnboundedBusyWindowError(
        f"EDF test did not close within {max_iterations} horizon doublings"
    )


def _violation_witness(diff: Curve, last: Q) -> Optional[Q]:
    """A point in ``[0, last]`` where *diff* is strictly positive.

    Scans each affine piece: positivity inside a piece implies positivity
    at its start, or after an interior zero crossing with positive slope
    (then the midpoint of the positive part is a witness).
    """
    starts = diff.breakpoints()
    for i, seg in enumerate(diff.segments):
        if seg.start > last:
            break
        end = starts[i + 1] if i + 1 < len(starts) else last
        end = min(end, last)
        if seg.value > 0:
            return seg.start
        if seg.slope > 0 and end > seg.start and seg.value_at(end) > 0:
            crossing = seg.start + (0 - seg.value) / seg.slope
            return (crossing + end) / 2
    if diff.at(last) > 0:
        return last
    return None
