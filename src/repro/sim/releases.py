"""Concrete behaviours (release sequences) of structural tasks."""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence

from repro._numeric import Q, NumLike, as_q
from repro.drt.model import DRTTask
from repro.drt.paths import Path
from repro.errors import SimulationError

__all__ = ["Release", "behaviour_from_path", "random_behaviour"]


@dataclass(frozen=True)
class Release:
    """A concrete job release.

    Attributes:
        time: Absolute release time.
        work: Execution demand of the job (its WCET in worst-case runs).
        job: Job type name.
        task: Task name (behaviours of several tasks can be merged).
        deadline: Absolute deadline (None when irrelevant); required by
            the EDF scheduling policy of the engine.
    """

    time: Fraction
    work: Fraction
    job: str
    task: str
    deadline: Optional[Fraction] = None


def behaviour_from_path(
    task: DRTTask, path: Path, start: NumLike = 0
) -> List[Release]:
    """The earliest-release behaviour following *path* from time *start*.

    This is the densest legal realisation of the path — the witness replay
    used by the tightness experiments.
    """
    t0 = as_q(start)
    return [
        Release(
            t0 + t,
            task.wcet(v),
            v,
            task.name,
            deadline=t0 + t + task.deadline(v),
        )
        for v, t in zip(path.vertices, path.releases)
    ]


def random_behaviour(
    task: DRTTask,
    horizon: NumLike,
    rng: random.Random,
    eagerness: float = 1.0,
    start_vertex: Optional[str] = None,
) -> List[Release]:
    """A random legal behaviour of *task* up to *horizon*.

    Walks the graph uniformly at random.  Each inter-release gap is the
    edge separation plus, with probability ``1 - eagerness``, a random
    slack of up to one separation (legal: separations are minimums).

    Args:
        task: The structural workload.
        horizon: Stop releasing after this time.
        rng: Random source (seeded by the caller for reproducibility).
        eagerness: Probability of using the earliest legal release time
            for each step; 1.0 reproduces worst-case release density.
        start_vertex: Optional fixed start vertex.

    Raises:
        SimulationError: if *eagerness* is outside [0, 1].
    """
    if not 0 <= eagerness <= 1:
        raise SimulationError(f"eagerness must be in [0, 1], got {eagerness}")
    hz = as_q(horizon)
    v = start_vertex if start_vertex is not None else rng.choice(task.job_names)
    t = Q(0)
    out = [Release(t, task.wcet(v), v, task.name, deadline=t + task.deadline(v))]
    while True:
        succ = task.successors(v)
        if not succ:
            break
        edge = rng.choice(succ)
        gap = edge.separation
        if rng.random() > eagerness:
            # Random rational slack in [0, separation], denominator 16.
            gap += edge.separation * Q(rng.randrange(0, 17), 16)
        t += gap
        if t > hz:
            break
        v = edge.dst
        out.append(
            Release(t, task.wcet(v), v, task.name, deadline=t + task.deadline(v))
        )
    return out
