"""Concrete service processes complying with lower service curves.

A :class:`ServiceModel` tells the engine at which (piecewise-constant)
rate the server works at any moment.  Each model documents the lower
service curve it complies with; :meth:`ServiceModel.service_curve` returns
it so tests can cross-validate simulated behaviour against analysis.

* :class:`ConstantRate` — an always-on speed-``R`` processor
  (curve ``beta(t) = R*t``).
* :class:`RateLatencyServer` — the rate-latency *adversary*: every time
  the system turns busy it stalls for the full latency ``T`` before
  serving at rate ``R``.  This is the least service any
  ``beta_{R,T}``-compliant server can provide, hence the process that
  realises worst-case delays.
* :class:`TdmaServer` — serves at rate ``R`` only inside its slot of
  length ``s`` in every frame of length ``F`` (curve: the TDMA lower
  staircase).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Optional, Tuple

from repro._numeric import INF, Q, NumLike, as_q
from repro.errors import SimulationError
from repro.minplus.builders import rate_latency
from repro.minplus.curve import Curve
from repro.curves.service import tdma_service

__all__ = [
    "ServiceModel",
    "ConstantRate",
    "RateLatencyServer",
    "TdmaServer",
    "TraceRateServer",
]


class ServiceModel(ABC):
    """Interface between the engine and a concrete service process."""

    @abstractmethod
    def on_busy_start(self, t: Q) -> None:
        """Notification: the backlog became non-zero at time *t*."""

    @abstractmethod
    def rate_at(self, t: Q):
        """Current service rate and the time until which it holds.

        Returns:
            ``(rate, until)`` — the server works at ``rate`` during
            ``[t, until)``; ``until`` may be :data:`INF`.
        """

    @abstractmethod
    def service_curve(self, horizon: NumLike) -> Curve:
        """The lower service curve this process complies with."""

    def reset(self) -> None:
        """Clear run state (default: nothing to clear)."""


class ConstantRate(ServiceModel):
    """Always-on processor of speed *rate*."""

    def __init__(self, rate: NumLike):
        self.rate = as_q(rate)
        if self.rate <= 0:
            raise SimulationError("rate must be positive")

    def on_busy_start(self, t: Q) -> None:
        pass

    def rate_at(self, t: Q):
        return self.rate, INF

    def service_curve(self, horizon: NumLike) -> Curve:
        return rate_latency(self.rate, 0)

    def __repr__(self) -> str:
        return f"ConstantRate({self.rate})"


class RateLatencyServer(ServiceModel):
    """Adversarial ``beta_{R,T}`` server: stalls T at each busy start.

    Complies with the rate-latency curve: in any busy period starting at
    ``t0`` the cumulative service on ``[t0, t]`` is
    ``R * max(0, t - t0 - T)``, exactly the curve's guarantee and never
    more — the worst compliant server.
    """

    def __init__(self, rate: NumLike, latency: NumLike):
        self.rate = as_q(rate)
        self.latency = as_q(latency)
        if self.rate <= 0 or self.latency < 0:
            raise SimulationError("need rate > 0 and latency >= 0")
        self._stall_until: Optional[Q] = None

    def reset(self) -> None:
        self._stall_until = None

    def on_busy_start(self, t: Q) -> None:
        self._stall_until = t + self.latency

    def rate_at(self, t: Q):
        if self._stall_until is not None and t < self._stall_until:
            return Q(0), self._stall_until
        return self.rate, INF

    def service_curve(self, horizon: NumLike) -> Curve:
        return rate_latency(self.rate, self.latency)

    def __repr__(self) -> str:
        return f"RateLatencyServer(R={self.rate}, T={self.latency})"


class TdmaServer(ServiceModel):
    """Serves only inside its TDMA slot: ``[k*frame, k*frame + slot)``.

    The phase is chosen adversarially by the caller through *offset*
    (shifting the release pattern relative to the slot): the compliant
    lower curve assumes the worst phase.
    """

    def __init__(
        self,
        rate: NumLike,
        slot: NumLike,
        frame: NumLike,
        offset: NumLike = 0,
    ):
        self.rate = as_q(rate)
        self.slot = as_q(slot)
        self.frame = as_q(frame)
        self.offset = as_q(offset)
        if not (0 < self.slot <= self.frame) or self.rate <= 0:
            raise SimulationError("need 0 < slot <= frame and rate > 0")

    def on_busy_start(self, t: Q) -> None:
        pass

    def rate_at(self, t: Q):
        phase = (t - self.offset) % self.frame
        if phase < self.slot:
            return self.rate, t + (self.slot - phase)
        return Q(0), t + (self.frame - phase)

    def service_curve(self, horizon: NumLike) -> Curve:
        return tdma_service(self.rate, self.slot, self.frame, horizon)

    def __repr__(self) -> str:
        return (
            f"TdmaServer(R={self.rate}, slot={self.slot}, "
            f"frame={self.frame}, offset={self.offset})"
        )


class TraceRateServer(ServiceModel):
    """Replays a finite piecewise-constant rate schedule, then a final rate.

    Useful for driving the simulator with measured or hand-crafted
    capacity profiles (e.g. a DVFS trace).  The compliant service curve
    is the tightest rate-latency curve below the schedule's cumulative
    capacity, computed from the trace itself.

    Args:
        schedule: ``(until_time, rate)`` pairs with strictly increasing
            times; rate ``rates[i]`` applies on
            ``[until_{i-1}, until_i)``.
        final_rate: Rate after the last scheduled time (> 0 so the
            simulation always terminates).
    """

    def __init__(self, schedule, final_rate):
        self.schedule = [(as_q(t), as_q(r)) for t, r in schedule]
        self.final_rate = as_q(final_rate)
        if self.final_rate <= 0:
            raise SimulationError("final_rate must be positive")
        last = Q(0)
        for t, r in self.schedule:
            if t <= last:
                raise SimulationError("schedule times must strictly increase")
            if r < 0:
                raise SimulationError("rates must be non-negative")
            last = t

    def on_busy_start(self, t: Q) -> None:
        pass

    def rate_at(self, t: Q):
        for until, rate in self.schedule:
            if t < until:
                return rate, until
        return self.final_rate, INF

    def cumulative(self, t: Q) -> Q:
        """Total capacity delivered on ``[0, t]``."""
        total = Q(0)
        prev = Q(0)
        for until, rate in self.schedule:
            if t <= prev:
                return total
            span = min(t, until) - prev
            total += rate * span
            prev = until
        if t > prev:
            total += self.final_rate * (t - prev)
        return total

    def service_curve(self, horizon) -> Curve:
        """A (conservative) rate-latency lower bound of the trace.

        Any window of length ``D`` contains at most the trace's *total*
        zero-rate time ``L`` without progress, and progresses at at least
        the minimum positive rate ``R`` otherwise, so
        ``beta_{R,L}(D) = R * (D - L)^+`` lower-bounds the service of
        every window.  (The exact trace lower curve is tighter; this
        bound is what the cross-validation tests rely on.)
        """
        rates = [r for _, r in self.schedule] + [self.final_rate]
        min_rate = min([r for r in rates if r > 0] or [self.final_rate])
        latency = Q(0)
        prev = Q(0)
        for until, rate in self.schedule:
            if rate == 0:
                latency += until - prev
            prev = until
        return rate_latency(min_rate, latency)

    def __repr__(self) -> str:
        return f"TraceRateServer({self.schedule}, final={self.final_rate})"
