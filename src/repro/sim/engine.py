"""The discrete-event simulation engine.

Jobs from one or more behaviours are merged into a single FIFO queue
(release order; ties broken by submission order) and served by a
:class:`~repro.sim.service.ServiceModel`.  Time and work are exact
rationals, so measured delays can be compared to analytic bounds with
``==``/``<=`` rather than tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro._numeric import INF, Q, NumLike, as_q, is_inf
from repro.errors import SimulationError
from repro.sim.releases import Release
from repro.sim.service import ServiceModel

__all__ = ["CompletedJob", "SimulationResult", "simulate", "observed_delay_of_task"]


@dataclass(frozen=True)
class CompletedJob:
    """One finished job with its measured timing.

    Attributes:
        release: The originating release.
        finish: Completion time.
        delay: ``finish - release.time``.
    """

    release: Release
    finish: Fraction

    @property
    def delay(self) -> Fraction:
        return self.finish - self.release.time


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        jobs: Completed jobs in completion order.
        max_delay: Largest observed delay (0 for an empty run).
        max_backlog: Largest backlog observed at any instant.
        unfinished: Jobs still queued when the run was cut off.
    """

    jobs: List[CompletedJob] = field(default_factory=list)
    max_delay: Fraction = Q(0)
    max_backlog: Fraction = Q(0)
    unfinished: int = 0

    def delays_by_job(self) -> Dict[Tuple[str, str], Fraction]:
        """Max observed delay per (task, job type)."""
        out: Dict[Tuple[str, str], Fraction] = {}
        for job in self.jobs:
            key = (job.release.task, job.release.job)
            if job.delay > out.get(key, Q(-1)):
                out[key] = job.delay
        return out


def _make_chooser(policy: str, priorities: Optional[Dict[str, int]]):
    """Index-selection function implementing a scheduling policy.

    Jobs are represented as ``[release, remaining, seq]``; the chooser
    returns the index of the job to serve next.  Re-evaluated at every
    event boundary, so EDF/SP are *preemptive* (a preempted job keeps its
    remaining work).
    """
    if policy == "fifo":
        return lambda pending: 0
    if policy == "edf":
        def edf(pending):
            def key(item):
                rel = item[0]
                if rel.deadline is None:
                    raise SimulationError(
                        f"EDF policy needs deadlines; job {rel.job!r} of "
                        f"{rel.task!r} has none"
                    )
                return (rel.deadline, item[2])
            return min(range(len(pending)), key=lambda i: key(pending[i]))
        return edf
    if policy == "sp":
        if priorities is None:
            raise SimulationError("SP policy needs a priorities mapping")
        def sp(pending):
            def key(item):
                rel = item[0]
                if rel.task not in priorities:
                    raise SimulationError(
                        f"no priority for task {rel.task!r}"
                    )
                return (priorities[rel.task], item[2])
            return min(range(len(pending)), key=lambda i: key(pending[i]))
        return sp
    raise SimulationError(f"unknown policy {policy!r} (fifo/edf/sp)")


def simulate(
    releases: Sequence[Release],
    service: ServiceModel,
    run_until: Optional[NumLike] = None,
    policy: str = "fifo",
    priorities: Optional[Dict[str, int]] = None,
    preemptive: bool = True,
) -> SimulationResult:
    """Run *releases* through *service* under a scheduling policy.

    Args:
        releases: Job releases (any order; merged and sorted by time,
            stable for equal times).
        service: The concrete service process; its run state is reset.
        run_until: Optional hard stop; jobs unfinished at that point are
            counted in :attr:`SimulationResult.unfinished`.  Default: run
            to completion.
        policy: ``"fifo"`` (release order, non-preemptive by
            construction), ``"edf"`` (preemptive earliest absolute
            deadline; releases need deadlines), or ``"sp"`` (preemptive
            static task priority).
        priorities: For ``"sp"``: ``{task_name: priority}`` with smaller
            numbers meaning higher priority.
        preemptive: When False, a job in service runs to completion
            before the policy picks again (non-preemptive EDF/SP; FIFO
            is unaffected).

    Raises:
        SimulationError: on unknown policy, missing deadlines/priorities,
            or a service model reporting a zero-progress interval bound.
    """
    service.reset()
    choose = _make_chooser(policy, priorities)
    queue = sorted(releases, key=lambda r: r.time)
    stop = as_q(run_until) if run_until is not None else None
    result = SimulationResult()
    now = Q(0)
    backlog = Q(0)
    next_idx = 0
    seq_counter = 0
    active_seq: Optional[int] = None  # in-service job (non-preemptive)
    pending: List[List] = []  # [release, remaining, admission seq]

    def admit_until(t: Q) -> None:
        nonlocal next_idx, backlog, seq_counter
        while next_idx < len(queue) and queue[next_idx].time <= t:
            rel = queue[next_idx]
            if backlog == 0:
                service.on_busy_start(rel.time)
            pending.append([rel, rel.work, seq_counter])
            seq_counter += 1
            backlog += rel.work
            result.max_backlog = max(result.max_backlog, backlog)
            next_idx += 1

    while True:
        if not pending:
            if next_idx >= len(queue):
                break
            now = max(now, queue[next_idx].time)
            admit_until(now)
            continue
        if stop is not None and now >= stop:
            break
        rate, until = service.rate_at(now)
        bounds: List[Q] = []
        if not is_inf(until):
            if until <= now:
                raise SimulationError(
                    f"service model returned non-advancing bound {until} at {now}"
                )
            bounds.append(until)
        if next_idx < len(queue) and queue[next_idx].time > now:
            bounds.append(queue[next_idx].time)
        if stop is not None:
            bounds.append(stop)
        if not preemptive and active_seq is not None:
            locked = [i for i, p in enumerate(pending) if p[2] == active_seq]
            active_idx = locked[0] if locked else choose(pending)
        else:
            active_idx = choose(pending)
        if not preemptive:
            active_seq = pending[active_idx][2]
        if rate > 0:
            completion = now + pending[active_idx][1] / rate
            bounds.append(completion)
        if not bounds:
            raise SimulationError(
                "server idle with backlog and no future event — "
                "service model provides no progress"
            )
        t_next = min(bounds)
        served = rate * (t_next - now)
        # Serve the policy-chosen job; within the interval no release or
        # completion occurs (bounds include both), so one job suffices.
        if served > 0:
            active = pending[active_idx]
            if active[1] <= served:
                backlog -= active[1]
                job = CompletedJob(active[0], t_next)
                result.jobs.append(job)
                result.max_delay = max(result.max_delay, job.delay)
                pending.pop(active_idx)
                active_seq = None
            else:
                active[1] -= served
                backlog -= served
        now = t_next
        admit_until(now)
    result.unfinished = len(pending) + (len(queue) - next_idx)
    return result


def observed_delay_of_task(result: SimulationResult, task_name: str) -> Fraction:
    """Max observed delay among jobs of *task_name* (0 if none finished)."""
    best = Q(0)
    for job in result.jobs:
        if job.release.task == task_name and job.delay > best:
            best = job.delay
    return best
