"""Discrete-event validation simulator.

Bounds are only trustworthy when something executes against them: this
subpackage generates concrete behaviours of structural tasks (random walks
and worst-case witness replays), runs them through concrete service
processes that *comply* with a given lower service curve (including the
adversarial one that serves as little as the curve allows), and measures
actual job delays and backlog.  The measured maxima must bracket every
analytic bound from below — the integration tests and experiment E6 assert
exactly that.
"""

from repro.sim.releases import Release, behaviour_from_path, random_behaviour
from repro.sim.service import (
    ServiceModel,
    ConstantRate,
    RateLatencyServer,
    TdmaServer,
    TraceRateServer,
)
from repro.sim.engine import SimulationResult, simulate, observed_delay_of_task

__all__ = [
    "Release",
    "behaviour_from_path",
    "random_behaviour",
    "ServiceModel",
    "ConstantRate",
    "RateLatencyServer",
    "TdmaServer",
    "TraceRateServer",
    "SimulationResult",
    "simulate",
    "observed_delay_of_task",
]
